/**
 * @file
 * akita-inspect: command-line client for any AkitaRTM endpoint.
 *
 * The scriptable counterpart of the dashboard — useful over SSH, in CI,
 * or from shell loops, and a second independent consumer of the HTTP
 * API (after the browser frontend) demonstrating the §IV-B claim that
 * the API is the integration boundary.
 *
 * Usage: akita-inspect [--host H] [--port P] <command> [args]
 *
 *   status                        simulation time/events/hang state
 *   resources                     CPU%, RSS, thread count
 *   components                    component hierarchy (indented)
 *   component <name>              one component's fields and buffers
 *   buffers [size|percent] [N]    bottleneck analyzer table
 *   progress                      progress bars
 *   throughput <name>             per-port rates of one component
 *   topology                      connection map
 *   domains [--json]              domain-engine partition + clocks
 *   domains --watch [seconds]     live per-domain lag/cost view
 *   fleet [--json]                per-sim table via a fleet gateway
 *   fleet --watch [seconds]       live fleet view
 *   pause | resume                simulation controls
 *   tick <name>                   wake one component
 *   profile [N]                   top-N profiler entries
 *   profile-start | profile-stop  toggle the profiler
 *   metrics                       list instrument families
 *   metrics <name> [step_ms]      range-query one family's time series
 *   scrape                        raw Prometheus exposition
 *   track <name> <field>          start a time series, prints its id
 *   untrack <id>                  stop a time series
 *   series <id>                   print a series (t_ps value rows)
 *   export <id>                   print a series as CSV
 *   watch [seconds]               poll status once per second
 *   replay <segment> [--json]     post-mortem: dump a flight-recorder
 *                                 segment (no server needed)
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hh"
#include "json/writer.hh"
#include "recorder/recorder.hh"
#include "recorder/segment.hh"
#include "web/client.hh"

using akita::json::Json;
using akita::web::HttpClient;

namespace
{

int
fail(const std::string &msg)
{
    std::fprintf(stderr, "akita-inspect: %s\n", msg.c_str());
    return 1;
}

/** URL-encodes a query value (component names contain '[' / ']'). */
std::string
urlEncode(const std::string &s)
{
    static const char *hex = "0123456789ABCDEF";
    std::string out;
    for (unsigned char c : s) {
        if (std::isalnum(c) || c == '-' || c == '_' || c == '.' ||
            c == '~') {
            out.push_back(static_cast<char>(c));
        } else {
            out.push_back('%');
            out.push_back(hex[c >> 4]);
            out.push_back(hex[c & 0xF]);
        }
    }
    return out;
}

Json
mustGet(const HttpClient &client, const std::string &target)
{
    auto r = client.get(target);
    if (!r)
        throw std::runtime_error("cannot reach the monitor (is the "
                                 "simulation running?)");
    if (r->status != 200)
        throw std::runtime_error("HTTP " + std::to_string(r->status) +
                                 ": " + r->body);
    return Json::parse(r->body);
}

void
mustPost(const HttpClient &client, const std::string &target)
{
    auto r = client.post(target, "");
    if (!r)
        throw std::runtime_error("cannot reach the monitor");
    if (r->status != 200)
        throw std::runtime_error("HTTP " + std::to_string(r->status) +
                                 ": " + r->body);
    std::printf("%s\n", r->body.c_str());
}

void
printStatus(const Json &st)
{
    std::printf("t=%s  events=%lld  queue=%lld %s%s%s\n",
                st.getStr("now").c_str(),
                static_cast<long long>(st.getInt("events", 0)),
                static_cast<long long>(st.getInt("queue_len", 0)),
                st.getBool("paused", false) ? "[paused]" : "",
                st.getBool("running", false) ? "" : "[not running]",
                st.get("hang") != nullptr &&
                        st.get("hang")->getBool("hanging", false)
                    ? "  *** HANG SUSPECTED ***"
                    : "");
}

void
printTree(const Json &node, int depth)
{
    std::string label = node.getStr("label");
    if (!label.empty())
        std::printf("%*s%s\n", depth * 2, "", label.c_str());
    const Json *children = node.get("children");
    if (children != nullptr) {
        for (const auto &c : children->items())
            printTree(c, depth + 1);
    }
}

/**
 * Offline post-mortem of a flight-recorder segment: recover the valid
 * window (tolerating a truncated or garbled tail), then dump it —
 * human-readable by default, one JSON document with --json.
 */
int
replaySegment(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return fail("usage: replay <segment-file> [--json]");
    bool asJson = args.size() > 2 && args[2] == "--json";

    namespace rec = akita::recorder;
    std::string err;
    auto reader = rec::SegmentReader::open(args[1], &err);
    if (!reader)
        return fail(err);

    const rec::SegmentHeader &h = reader->header();
    const auto &records = reader->records();
    const rec::ScanStats &stats = reader->stats();

    // Reassemble the streams the recorder teed in.
    struct SeriesOut
    {
        std::string name;
        std::string labelsJson;
        std::vector<rec::FlightRecorder::Point> points;
    };
    std::map<std::uint32_t, SeriesOut> series;
    std::vector<std::string> events;      // Raw JSON documents.
    std::vector<std::string> hangReports; // Raw JSON documents.
    std::string metaJson;
    std::size_t badPasses = 0;

    for (const auto &r : records) {
        std::string payload(reinterpret_cast<const char *>(r.payload),
                            r.payloadLen);
        switch (r.type) {
        case rec::RecordType::Meta:
            metaJson = payload;
            break;
        case rec::RecordType::Dict: {
            Json d = Json::parse(payload);
            auto id = static_cast<std::uint32_t>(d.getInt("id", 0));
            series[id].name = d.getStr("name");
            const Json *labels = d.get("labels");
            series[id].labelsJson = labels ? labels->dump() : "{}";
            break;
        }
        case rec::RecordType::MetricsPass: {
            rec::DecodedPass pass;
            if (!rec::decodeMetricsPass(r.payload, r.payloadLen,
                                        &pass)) {
                badPasses++;
                break;
            }
            for (const auto &v : pass.values) {
                series[v.id].points.push_back(
                    {pass.wallMs, pass.simPs, v.value});
            }
            break;
        }
        case rec::RecordType::EngineEvent:
            events.push_back(payload);
            break;
        case rec::RecordType::HangReport:
            hangReports.push_back(payload);
            break;
        case rec::RecordType::Pad:
            break;
        }
    }

    if (asJson) {
        std::string out;
        akita::json::Writer w(out);
        w.beginObject();
        w.field("path", args[1]);
        w.field("version", static_cast<std::uint64_t>(h.version));
        w.field("segment_bytes", h.segmentBytes);
        w.field("data_bytes", h.dataBytes);
        w.field("write_cursor_hint", h.writeCursor);
        w.field("window_records",
                static_cast<std::uint64_t>(records.size()));
        w.field("frames_found",
                static_cast<std::uint64_t>(stats.framesFound));
        w.field("stale_dropped",
                static_cast<std::uint64_t>(stats.staleDropped));
        w.field("first_wall_ms", reader->firstWallMs());
        w.field("last_wall_ms", reader->lastWallMs());
        if (!records.empty()) {
            w.field("first_seq", records.front().seq);
            w.field("last_seq", records.back().seq);
        }
        w.key("meta");
        if (metaJson.empty())
            w.value(nullptr);
        else
            w.json(Json::parse(metaJson));
        w.key("events").beginArray();
        for (const auto &e : events)
            w.json(Json::parse(e));
        w.endArray();
        w.key("hang_reports").beginArray();
        for (const auto &hr : hangReports)
            w.json(Json::parse(hr));
        w.endArray();
        w.key("series").beginArray();
        for (const auto &kv : series) {
            w.beginObject();
            w.field("id", static_cast<std::uint64_t>(kv.first));
            w.field("name", kv.second.name);
            w.key("labels");
            w.json(Json::parse(kv.second.labelsJson.empty()
                                   ? "{}"
                                   : kv.second.labelsJson));
            w.key("points").beginArray();
            for (const auto &p : kv.second.points) {
                w.beginObject();
                w.field("t_ms", p.wallMs);
                w.field("sim_ps", p.simPs);
                w.field("value", p.value);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::printf("%s\n", out.c_str());
        return 0;
    }

    std::printf("segment %s (v%u, %llu bytes, ring %llu bytes)\n",
                args[1].c_str(), h.version,
                static_cast<unsigned long long>(h.segmentBytes),
                static_cast<unsigned long long>(h.dataBytes));
    std::printf("recovered window: %zu records", records.size());
    if (!records.empty()) {
        std::printf(", seq [%llu, %llu], wall [%lld, %lld] ms",
                    static_cast<unsigned long long>(records.front().seq),
                    static_cast<unsigned long long>(records.back().seq),
                    static_cast<long long>(reader->firstWallMs()),
                    static_cast<long long>(reader->lastWallMs()));
    }
    std::printf("\n  (%zu CRC-valid frames found, %zu stale dropped, "
                "%llu bytes skipped, cursor hint %llu)\n",
                stats.framesFound, stats.staleDropped,
                static_cast<unsigned long long>(stats.bytesSkipped),
                static_cast<unsigned long long>(h.writeCursor));
    if (badPasses != 0)
        std::printf("  %zu malformed metrics passes ignored\n",
                    badPasses);
    if (!metaJson.empty())
        std::printf("meta: %s\n", metaJson.c_str());

    if (!events.empty()) {
        std::printf("\nengine events:\n");
        for (const auto &e : events) {
            Json ev = Json::parse(e);
            std::printf("  %12lld ms  sim=%llu ps  %s\n",
                        static_cast<long long>(ev.getInt("wall_ms", 0)),
                        static_cast<unsigned long long>(
                            ev.getInt("sim_ps", 0)),
                        ev.getStr("kind").c_str());
        }
    }
    if (!hangReports.empty()) {
        std::printf("\nhang reports:\n");
        for (const auto &hr : hangReports) {
            Json rep = Json::parse(hr);
            std::printf("  verdict=%s  %s\n",
                        rep.getStr("verdict").c_str(),
                        rep.getStr("summary").c_str());
        }
    }
    if (!series.empty()) {
        std::printf("\nmetric series (%zu):\n", series.size());
        for (const auto &kv : series) {
            const SeriesOut &s = kv.second;
            std::printf("  [%u] %-44s %s  %zu points",
                        kv.first, s.name.c_str(), s.labelsJson.c_str(),
                        s.points.size());
            if (!s.points.empty()) {
                std::printf("  last=%g @ %lld ms",
                            s.points.back().value,
                            static_cast<long long>(
                                s.points.back().wallMs));
            }
            std::printf("\n");
        }
    }
    return 0;
}

int
run(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 8080;
    std::vector<std::string> args;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
            host = argv[++i];
        } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
        } else {
            args.emplace_back(argv[i]);
        }
    }
    if (args.empty())
        return fail("missing command (see the header of this tool)");

    // Offline commands first: no server required.
    if (args[0] == "replay")
        return replaySegment(args);

    HttpClient client(host, port);
    const std::string &cmd = args[0];

    if (cmd == "status") {
        printStatus(mustGet(client, "/api/status"));
        return 0;
    }
    if (cmd == "resources") {
        Json r = mustGet(client, "/api/resources");
        std::printf("cpu %.0f%%  rss %.1f MB  vm %.1f MB  threads %lld\n",
                    r.getNumber("cpu_percent", 0),
                    r.getNumber("rss_bytes", 0) / 1048576.0,
                    r.getNumber("vm_bytes", 0) / 1048576.0,
                    static_cast<long long>(r.getInt("num_threads", 0)));
        return 0;
    }
    if (cmd == "components") {
        printTree(mustGet(client, "/api/components"), -1);
        return 0;
    }
    if (cmd == "component") {
        if (args.size() < 2)
            return fail("usage: component <name>");
        Json c = mustGet(client,
                         "/api/component?name=" + urlEncode(args[1]));
        std::printf("%s\n", c.getStr("name").c_str());
        for (const auto &f : c.get("fields")->items()) {
            std::printf("  %-24s %-8s %s\n", f.getStr("name").c_str(),
                        f.getStr("type").c_str(),
                        f.get("value")->dump().c_str());
        }
        for (const auto &b : c.get("buffers")->items()) {
            std::printf("  %-40s %lld/%lld\n",
                        b.getStr("name").c_str(),
                        static_cast<long long>(b.getInt("size", 0)),
                        static_cast<long long>(b.getInt("capacity", 0)));
        }
        return 0;
    }
    if (cmd == "buffers") {
        std::string sort = args.size() > 1 ? args[1] : "percent";
        std::string top = args.size() > 2 ? args[2] : "20";
        Json rows = mustGet(client, "/api/buffers?sort=" + sort +
                                        "&top=" + top);
        std::printf("%-50s %6s %5s\n", "Buffer", "Size", "Cap");
        for (const auto &row : rows.items()) {
            std::printf("%-50s %6lld %5lld\n",
                        row.getStr("buffer").c_str(),
                        static_cast<long long>(row.getInt("size", 0)),
                        static_cast<long long>(row.getInt("cap", 0)));
        }
        return 0;
    }
    if (cmd == "progress") {
        Json bars = mustGet(client, "/api/progress");
        for (const auto &b : bars.items()) {
            std::printf("%-28s %lld done / %lld running / %lld left\n",
                        b.getStr("label").c_str(),
                        static_cast<long long>(b.getInt("completed", 0)),
                        static_cast<long long>(
                            b.getInt("in_progress", 0)),
                        static_cast<long long>(
                            b.getInt("not_started", 0)));
        }
        return 0;
    }
    if (cmd == "throughput") {
        if (args.size() < 2)
            return fail("usage: throughput <component>");
        Json ports = mustGet(
            client, "/api/throughput?component=" + urlEncode(args[1]));
        std::printf("%-40s %10s %12s %10s\n", "Port", "sent",
                    "msgs/sim-s", "rejects");
        for (const auto &p : ports.items()) {
            std::printf("%-40s %10lld %12.3g %10lld\n",
                        p.getStr("port").c_str(),
                        static_cast<long long>(
                            p.getInt("total_sent", 0)),
                        p.getNumber("send_rate_sim_per_sec", 0),
                        static_cast<long long>(
                            p.getInt("send_rejections", 0)));
        }
        return 0;
    }
    if (cmd == "topology") {
        Json topo = mustGet(client, "/api/topology");
        for (const auto &conn : topo.items()) {
            std::printf("%s\n", conn.getStr("connection").c_str());
            for (const auto &p : conn.get("ports")->items())
                std::printf("  %s\n", p.strVal().c_str());
        }
        return 0;
    }
    if (cmd == "domains") {
        bool asJson = false;
        bool watch = false;
        int seconds = 0;
        for (std::size_t i = 1; i < args.size(); i++) {
            if (args[i] == "--json") {
                asJson = true;
            } else if (args[i] == "--watch") {
                watch = true;
                if (i + 1 < args.size() &&
                    std::isdigit(
                        static_cast<unsigned char>(args[i + 1][0])))
                    seconds = std::atoi(args[++i].c_str());
            } else {
                return fail("usage: domains [--json] "
                            "[--watch [seconds]]");
            }
        }
        if (asJson) {
            // Raw body: scripting-friendly, includes everything the
            // endpoint offers (repartition history, edge lookaheads).
            auto r = client.get("/api/v1/domains");
            if (!r || r->status != 200)
                return fail(r ? r->body : "unreachable");
            std::printf("%s\n", r->body.c_str());
            return 0;
        }
        // --watch: one compact line per domain, once a second. The
        // endpoint is coalesced server-side, so N watchers cost one
        // build per TTL window.
        for (int i = 0; !watch || seconds == 0 || i < seconds; i++) {
            if (watch && i > 0)
                std::this_thread::sleep_for(std::chrono::seconds(1));
            Json d;
            try {
                d = mustGet(client, "/api/v1/domains");
            } catch (const std::exception &e) {
                if (!watch)
                    throw;
                std::printf("(%s)\n", e.what());
                continue;
            }
            long long maxClock = 0;
            for (const auto &dom : d.get("domains")->items())
                maxClock = std::max(
                    maxClock,
                    static_cast<long long>(dom.getInt("clock_ps", 0)));
            std::printf("%lld domains  imbalance=%.2f  "
                        "repartitions=%lld (%lld rejected, "
                        "%lld components moved)\n",
                        static_cast<long long>(
                            d.getInt("num_domains", 0)),
                        d.getNumber("imbalance", 0),
                        static_cast<long long>(
                            d.getInt("repartitions", 0)),
                        static_cast<long long>(
                            d.getInt("repartitions_rejected", 0)),
                        static_cast<long long>(
                            d.getInt("migrated_components", 0)));
            for (const auto &dom : d.get("domains")->items()) {
                long long clock =
                    static_cast<long long>(dom.getInt("clock_ps", 0));
                std::printf(
                    "[%lld] clock=%lld ps (lag %lld)  events=%lld  "
                    "queue=%lld  cost=%lld\n",
                    static_cast<long long>(dom.getInt("id", 0)), clock,
                    maxClock - clock,
                    static_cast<long long>(dom.getInt("events", 0)),
                    static_cast<long long>(dom.getInt("queue_len", 0)),
                    static_cast<long long>(dom.getInt("cost", 0)));
                if (watch)
                    continue;
                for (const auto &m : dom.get("members")->items())
                    std::printf("      %s\n", m.strVal().c_str());
            }
            if (watch)
                continue;
            const Json *edges = d.get("edges");
            if (edges != nullptr && !edges->items().empty()) {
                std::printf("edges:\n");
                for (const auto &e : edges->items()) {
                    std::printf(
                        "  %lld -> %lld  lookahead=%lld ps  via %s\n",
                        static_cast<long long>(e.getInt("src", 0)),
                        static_cast<long long>(e.getInt("dst", 0)),
                        static_cast<long long>(
                            e.getInt("lookahead_ps", 0)),
                        e.getStr("connection").c_str());
                }
            }
            const Json *reps = d.get("repartition_events");
            if (reps != nullptr && !reps->items().empty()) {
                std::printf("repartitions:\n");
                for (const auto &r : reps->items()) {
                    std::printf("  #%lld @ %lld ps  imbalance "
                                "%.2f -> %.2f  moved %lld\n",
                                static_cast<long long>(
                                    r.getInt("seq", 0)),
                                static_cast<long long>(
                                    r.getInt("sim_ps", 0)),
                                r.getNumber("imbalance_before", 0),
                                r.getNumber("imbalance_after", 0),
                                static_cast<long long>(
                                    r.getInt("migrated", 0)));
                }
            }
            if (!watch)
                break;
        }
        return 0;
    }
    if (cmd == "fleet") {
        bool asJson = false;
        bool watch = false;
        int seconds = 0;
        for (std::size_t i = 1; i < args.size(); i++) {
            if (args[i] == "--json") {
                asJson = true;
            } else if (args[i] == "--watch") {
                watch = true;
                if (i + 1 < args.size() &&
                    std::isdigit(
                        static_cast<unsigned char>(args[i + 1][0])))
                    seconds = std::atoi(args[++i].c_str());
            } else {
                return fail("usage: fleet [--json] "
                            "[--watch [seconds]]");
            }
        }
        if (asJson) {
            auto r = client.get("/api/v1/fleet");
            if (!r || r->status != 200)
                return fail(r ? r->body : "unreachable (is a fleet "
                                          "gateway running?)");
            std::printf("%s\n", r->body.c_str());
            return 0;
        }
        for (int i = 0; !watch || seconds == 0 || i < seconds; i++) {
            if (watch && i > 0)
                std::this_thread::sleep_for(std::chrono::seconds(1));
            Json f;
            try {
                f = mustGet(client, "/api/v1/fleet");
            } catch (const std::exception &e) {
                if (!watch)
                    throw;
                std::printf("(%s)\n", e.what());
                continue;
            }
            const Json *slowest = f.get("slowest");
            std::printf("%lld sims  total_events=%lld  slowest=%s @ "
                        "%lld ps\n",
                        static_cast<long long>(f.getInt("num_sims", 0)),
                        static_cast<long long>(
                            f.getInt("total_events", 0)),
                        slowest ? slowest->getStr("id").c_str() : "-",
                        slowest ? static_cast<long long>(
                                      slowest->getInt("now_ps", 0))
                                : 0);
            for (const auto &s : f.get("sims")->items()) {
                const Json *st = s.get("status");
                const Json *hang = s.get("hang");
                long long total = 0, done = 0;
                if (st != nullptr && st->get("bars") != nullptr) {
                    for (const auto &b : st->get("bars")->items()) {
                        total += static_cast<long long>(
                            b.getInt("total", 0));
                        done += static_cast<long long>(
                            b.getInt("completed", 0));
                    }
                }
                std::printf(
                    "%-8s t=%lld ps  events=%lld  queue=%lld  "
                    "progress=%lld/%lld%s%s\n",
                    st ? st->getStr("id").c_str() : "?",
                    st ? static_cast<long long>(
                             st->getInt("now_ps", 0))
                       : 0,
                    st ? static_cast<long long>(st->getInt("events", 0))
                       : 0,
                    st ? static_cast<long long>(
                             st->getInt("queue_len", 0))
                       : 0,
                    done, total,
                    st != nullptr && st->getBool("paused", false)
                        ? "  [paused]"
                        : "",
                    hang != nullptr && hang->getBool("hanging", false)
                        ? "  [HANG]"
                        : "");
            }
            if (!watch)
                break;
        }
        return 0;
    }
    if (cmd == "pause") {
        mustPost(client, "/api/pause");
        return 0;
    }
    if (cmd == "resume") {
        mustPost(client, "/api/resume");
        return 0;
    }
    if (cmd == "tick") {
        if (args.size() < 2)
            return fail("usage: tick <component>");
        mustPost(client, "/api/tick?component=" + urlEncode(args[1]));
        return 0;
    }
    if (cmd == "profile-start") {
        mustPost(client, "/api/profile/start");
        return 0;
    }
    if (cmd == "profile-stop") {
        mustPost(client, "/api/profile/stop");
        return 0;
    }
    if (cmd == "profile") {
        std::string top = args.size() > 1 ? args[1] : "15";
        Json p = mustGet(client, "/api/profile?top=" + top);
        std::printf("profiler %s\n", p.getBool("enabled", false)
                                         ? "enabled"
                                         : "disabled");
        std::printf("%-44s %10s %10s %10s\n", "function", "self ms",
                    "total ms", "calls");
        for (const auto &f : p.get("functions")->items()) {
            std::printf("%-44s %10.2f %10.2f %10lld\n",
                        f.getStr("name").c_str(),
                        f.getNumber("self_ns", 0) / 1e6,
                        f.getNumber("total_ns", 0) / 1e6,
                        static_cast<long long>(f.getInt("calls", 0)));
        }
        return 0;
    }
    if (cmd == "scrape") {
        auto r = client.get("/metrics");
        if (!r || r->status != 200)
            return fail(r ? r->body : "unreachable");
        std::fputs(r->body.c_str(), stdout);
        return 0;
    }
    if (cmd == "metrics") {
        if (args.size() < 2) {
            // List registered families: name, type, labels.
            Json list = mustGet(client, "/api/v1/metrics");
            std::printf("%-44s %-10s %s\n", "name", "type", "labels");
            for (const auto &d : list.items()) {
                std::string labels = d.get("labels")->dump();
                std::printf("%-44s %-10s %s\n",
                            d.getStr("name").c_str(),
                            d.getStr("type").c_str(), labels.c_str());
            }
            return 0;
        }
        std::string step = args.size() > 2 ? args[2] : "1000";
        Json series =
            mustGet(client, "/api/v1/metrics/query?name=" +
                                urlEncode(args[1]) + "&step=" + step);
        for (const auto &s : series.items()) {
            std::printf("# %s %s\n", s.getStr("name").c_str(),
                        s.get("labels")->dump().c_str());
            for (const auto &p : s.get("points")->items()) {
                std::printf("%lld min=%g max=%g avg=%g last=%g "
                            "count=%lld\n",
                            static_cast<long long>(p.getInt("t_ms", 0)),
                            p.getNumber("min", 0), p.getNumber("max", 0),
                            p.getNumber("avg", 0), p.getNumber("last", 0),
                            static_cast<long long>(p.getInt("count", 0)));
            }
        }
        return 0;
    }
    if (cmd == "track") {
        if (args.size() < 3)
            return fail("usage: track <component> <field>");
        auto r = client.post("/api/monitor/track?component=" +
                                 urlEncode(args[1]) +
                                 "&field=" + urlEncode(args[2]),
                             "");
        if (!r || r->status != 200)
            return fail(r ? r->body : "unreachable");
        std::printf("series id %lld\n",
                    static_cast<long long>(
                        Json::parse(r->body).getInt("id", 0)));
        return 0;
    }
    if (cmd == "untrack") {
        if (args.size() < 2)
            return fail("usage: untrack <id>");
        mustPost(client, "/api/monitor/untrack?id=" + args[1]);
        return 0;
    }
    if (cmd == "series") {
        if (args.size() < 2)
            return fail("usage: series <id>");
        Json s = mustGet(client, "/api/monitor/series?id=" + args[1]);
        std::printf("# %s.%s\n", s.getStr("component").c_str(),
                    s.getStr("field").c_str());
        for (const auto &pt : s.get("points")->items()) {
            std::printf("%lld %g\n",
                        static_cast<long long>(pt.getInt("t_ps", 0)),
                        pt.getNumber("v", 0));
        }
        return 0;
    }
    if (cmd == "export") {
        if (args.size() < 2)
            return fail("usage: export <id>");
        auto r = client.get("/api/monitor/export?id=" + args[1]);
        if (!r || r->status != 200)
            return fail(r ? r->body : "unreachable");
        std::fputs(r->body.c_str(), stdout);
        return 0;
    }
    if (cmd == "watch") {
        int seconds = args.size() > 1 ? std::atoi(args[1].c_str()) : 0;
        for (int i = 0; seconds == 0 || i < seconds; i++) {
            try {
                printStatus(mustGet(client, "/api/status"));
            } catch (const std::exception &e) {
                std::printf("(%s)\n", e.what());
            }
            std::this_thread::sleep_for(std::chrono::seconds(1));
        }
        return 0;
    }
    return fail("unknown command '" + cmd + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        return fail(e.what());
    }
}
