/**
 * @file
 * Case study 2 (paper §V-B), interactive: debugging a simulator hang.
 *
 * Starts a simulation with the historic L2 write-buffer bug enabled.
 * The simulation deadlocks; this example shows, live, how the monitor
 * exposes it:
 *   - the dashboard's time counter freezes while the process stays up,
 *   - the hang watchdog fires,
 *   - the buffer analyzer lists residue in L1/L2/DRAM buffers,
 *   - per-component Tick wakes components without progress (it is a
 *     true deadlock, not a sleeping component),
 *   - the L2 banks report `eviction_stalled` — the root cause.
 *
 * The dashboard stays up afterwards so you can poke at the wreck; run
 * with --once to exit automatically.
 */

#include <cstdio>
#include <cstring>
#include <thread>

#include "gpu/platform.hh"
#include "rtm/monitor.hh"
#include "workloads/workloads.hh"

using namespace akita;

int
main(int argc, char **argv)
{
    bool once = argc > 1 && std::strcmp(argv[1], "--once") == 0;

    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.legacyL2Deadlock = true; // The historic bug.
    cfg.gpu.l2.numSets = 1;
    cfg.gpu.l2.ways = 4;
    cfg.gpu.l2.wbInCapacity = 2;
    cfg.gpu.l2.installCapacity = 2;
    cfg.gpu.l2.wbFetchedCapacity = 2;
    cfg.gpu.l2.dramWriteInflightMax = 1;
    gpu::applyEngineArgs(cfg, argc, argv); // --engine= / --workers=

    gpu::Platform platform(cfg);

    rtm::MonitorConfig mcfg;
    mcfg.hangThresholdSec = 2.0; // "last for a few seconds".
    mcfg.recordPath = cfg.recordPath;
    mcfg.recordSegmentBytes = cfg.recordSegmentBytes;
    rtm::Monitor monitor(mcfg);
    monitor.registerEngine(&platform.engine());
    monitor.registerComponents(platform.components());
    platform.driver().setProgressListener(&monitor);
    monitor.startServer();

    workloads::TransposeParams params;
    params.n = 256;
    auto kernel = workloads::makeTranspose(params);
    platform.launchKernel(&kernel);

    std::printf("running a write-heavy kernel on an L2 with the legacy "
                "write-buffer bug...\n");
    std::thread sim([&]() { platform.run(); });

    // Watch for the hang like a user staring at the dashboard.
    while (true) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        rtm::HangStatus hang = monitor.hangStatus();
        if (hang.hanging) {
            std::printf("\nHANG: simulation time frozen at %s for "
                        "%.1fs (event queue drained: %s)\n",
                        sim::formatTime(hang.simTime).c_str(),
                        hang.frozenForSec,
                        hang.queueDrained ? "yes" : "no");
            break;
        }
        std::printf("  t=%s (still moving)\n",
                    sim::formatTime(platform.engine().now()).c_str());
    }

    std::printf("\nbuffer residue (non-empty buffers mark components "
                "that cannot make progress):\n");
    int shown = 0;
    for (const auto &row :
         monitor.bufferLevels(rtm::BufferSort::BySize, 0)) {
        if (row.size == 0 || shown >= 10)
            continue;
        std::printf("  %-46s %zu/%zu\n", row.name.c_str(), row.size,
                    row.capacity);
        shown++;
    }

    // Run the analyzer while the hang signature still holds: kicking
    // components below advances virtual time and resets the watchdog.
    std::printf("\nautomated root cause (/api/v1/hang):\n");
    rtm::HangReport report = monitor.hangReport();
    std::printf("  verdict: %s\n  %s\n", report.verdict.c_str(),
                report.summary.c_str());
    for (const auto &e : report.cycleEdges)
        std::printf("    %s waits on %s (via %s, %.0f%% full)\n",
                    e.from.c_str(), e.to.c_str(), e.via.c_str(),
                    e.fullness * 100.0);

    std::printf("\nkicking every component with the Tick control...\n");
    sim::VTime before = platform.engine().now();
    for (auto *c : platform.components())
        monitor.tickComponent(c->name());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::printf("virtual time moved %s — the components wake, tick, "
                "and stall again: a deadlock, not a sleep.\n",
                sim::formatTime(platform.engine().now() - before)
                    .c_str());

    std::printf("\nroot cause (component details):\n");
    for (auto *c : platform.components()) {
        const auto *f = c->fields().find("eviction_stalled");
        if (f == nullptr)
            continue;
        bool stalled = false;
        monitor.withEngineLock(
            [&]() { stalled = f->getter().boolVal(); });
        if (stalled) {
            std::printf("  %s: local storage holds an eviction the "
                        "write buffer cannot accept, while the write "
                        "buffer holds fetched data the storage cannot "
                        "take\n",
                        c->name().c_str());
        }
    }
    std::printf("\nfix: build the platform with "
                "cfg.legacyL2Deadlock = false (the merged patch).\n");

    if (!once) {
        std::printf("\ndashboard still serving at %s — inspect the "
                    "deadlock (Ctrl-C to quit)\n",
                    monitor.url().c_str());
        while (true)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    }

    platform.engine().stop();
    sim.join();
    monitor.stopServer();
    return 0;
}
