/**
 * @file
 * Remote monitoring over the HTTP API — the "simulators written in
 * another language" path of paper §IV-B.
 *
 * This client contains no simulator code at all: it watches any running
 * AkitaRTM-compatible endpoint, which demonstrates that the API surface
 * is the integration boundary. It renders a terminal mini-dashboard:
 * simulation time, resource usage, progress bars, and the top of the
 * buffer analyzer table.
 *
 *   $ ./quickstart &                 # or any monitored simulation
 *   $ ./remote_monitor 127.0.0.1 8080
 */

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "json/json.hh"
#include "web/client.hh"

using akita::json::Json;
using akita::web::HttpClient;

int
main(int argc, char **argv)
{
    std::string host = argc > 1 ? argv[1] : "127.0.0.1";
    auto port = static_cast<std::uint16_t>(
        argc > 2 ? std::atoi(argv[2]) : 8080);
    int iterations = argc > 3 ? std::atoi(argv[3]) : 0; // 0 = forever.

    HttpClient client(host, port);
    std::printf("watching http://%s:%u (Ctrl-C to quit)\n", host.c_str(),
                port);

    for (int i = 0; iterations == 0 || i < iterations; i++) {
        auto status = client.get("/api/status");
        if (!status || status->status != 200) {
            std::printf("no simulation at http://%s:%u yet...\n",
                        host.c_str(), port);
            std::this_thread::sleep_for(std::chrono::seconds(1));
            continue;
        }

        Json st = Json::parse(status->body);
        std::printf("\nt=%s  events=%lld  %s%s\n",
                    st.getStr("now").c_str(),
                    static_cast<long long>(st.getInt("events", 0)),
                    st.getBool("paused", false) ? "[paused] " : "",
                    st.get("hang") != nullptr &&
                            st.get("hang")->getBool("hanging", false)
                        ? "[HANG SUSPECTED]"
                        : "");

        if (auto res = client.get("/api/resources")) {
            Json r = Json::parse(res->body);
            std::printf("cpu %.0f%%  rss %.0f MB  threads %lld\n",
                        r.getNumber("cpu_percent", 0),
                        r.getNumber("rss_bytes", 0) / 1048576.0,
                        static_cast<long long>(
                            r.getInt("num_threads", 0)));
        }

        if (auto prog = client.get("/api/progress")) {
            Json bars = Json::parse(prog->body);
            for (const auto &b : bars.items()) {
                auto total =
                    std::max<std::int64_t>(b.getInt("total", 1), 1);
                auto done = b.getInt("completed", 0);
                int width = 30;
                int fill = static_cast<int>(done * width / total);
                std::string bar(static_cast<std::size_t>(fill), '#');
                bar.resize(static_cast<std::size_t>(width), '.');
                std::printf("%-24s [%s] %lld/%lld\n",
                            b.getStr("label").c_str(), bar.c_str(),
                            static_cast<long long>(done),
                            static_cast<long long>(total));
            }
        }

        if (auto bufs = client.get("/api/buffers?sort=percent&top=5")) {
            Json rows = Json::parse(bufs->body);
            for (const auto &row : rows.items()) {
                if (row.getInt("size", 0) == 0)
                    continue;
                std::printf("  %-46s %lld/%lld\n",
                            row.getStr("buffer").c_str(),
                            static_cast<long long>(row.getInt("size", 0)),
                            static_cast<long long>(row.getInt("cap", 0)));
            }
        }

        std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    return 0;
}
