/**
 * @file
 * Quickstart: monitor a small simulation from your browser.
 *
 * Builds a 4-chiplet GPU platform, attaches the AkitaRTM monitor, opens
 * the dashboard on a local port (8080 by default; set AKITA_PORT, or 0
 * for an ephemeral port), launches a couple of kernels, and keeps the
 * process alive so the dashboard stays inspectable after completion.
 *
 *   $ ./quickstart            # then open http://127.0.0.1:8080
 *   $ ./quickstart --once     # exit when the simulation completes
 */

#include <cstdio>
#include <cstring>
#include <thread>

#include "gpu/platform.hh"
#include "rtm/monitor.hh"
#include "workloads/workloads.hh"

using namespace akita;

int
main(int argc, char **argv)
{
    bool once = argc > 1 && std::strcmp(argv[1], "--once") == 0;

    // 1. Build the simulated hardware: 4 chiplets, tiny shape so the
    //    quickstart runs in seconds.
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::applyEngineArgs(cfg, argc, argv); // --engine= / --workers=
    gpu::Platform platform(cfg);

    // 2. Attach the monitor: register the engine and every component,
    //    hook kernel progress into the dashboard's progress bars.
    rtm::MonitorConfig mcfg;
    const char *port = std::getenv("AKITA_PORT");
    mcfg.port = port ? static_cast<std::uint16_t>(std::atoi(port)) : 8080;
    mcfg.recordPath = cfg.recordPath; // --record= / AKITA_RECORD
    mcfg.recordSegmentBytes = cfg.recordSegmentBytes;
    rtm::Monitor monitor(mcfg);
    monitor.registerEngine(&platform.engine());
    monitor.registerComponents(platform.components());
    for (auto *conn : platform.connections())
        monitor.registerConnection(conn); // /api/topology
    platform.driver().setProgressListener(&monitor);

    if (!monitor.startServer()) {
        std::fprintf(stderr,
                     "could not bind port %u (set AKITA_PORT=0 for an "
                     "ephemeral port)\n",
                     mcfg.port);
        return 1;
    }

    // 3. Launch work: one bandwidth-bound kernel, one compute-heavy.
    workloads::MemCopyParams copy;
    copy.bytes = 16ull << 20;
    auto copyKernel = workloads::makeMemCopy(copy);

    workloads::FirParams fir;
    fir.numSamples = 1u << 19;
    auto firKernel = workloads::makeFir(fir);

    platform.launchKernel(&copyKernel);
    platform.launchKernel(&firKernel);

    // 4. Run. With the monitor attached, pausing/resuming and the
    //    per-component "Tick" button work from the browser while this
    //    call executes.
    std::printf("running 2 kernels; watch them at %s\n",
                monitor.url().c_str());
    auto status = platform.run();

    std::printf("simulation %s at %s (%llu events)\n",
                status == gpu::Platform::RunStatus::Completed
                    ? "completed"
                    : "did not complete",
                sim::formatTime(platform.engine().now()).c_str(),
                static_cast<unsigned long long>(
                    platform.engine().eventCount()));

    if (!once) {
        std::printf("dashboard still serving (Ctrl-C to quit)...\n");
        while (true)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    monitor.stopServer();
    return status == gpu::Platform::RunStatus::Completed ? 0 : 1;
}
