/**
 * @file
 * Quickstart: monitor a small simulation from your browser.
 *
 * Builds a 4-chiplet GPU platform, attaches the AkitaRTM monitor, opens
 * the dashboard on a local port (8080 by default; set AKITA_PORT, or 0
 * for an ephemeral port), launches a couple of kernels, and keeps the
 * process alive so the dashboard stays inspectable after completion.
 *
 *   $ ./quickstart            # then open http://127.0.0.1:8080
 *   $ ./quickstart --once     # exit when the simulation completes
 *   $ ./quickstart --fleet=4  # 4 sims behind one gateway
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "gpu/platform.hh"
#include "rtm/gateway.hh"
#include "rtm/monitor.hh"
#include "workloads/workloads.hh"

using namespace akita;

namespace
{

/** The quickstart workload: one bandwidth-bound + one compute kernel. */
int
runKernels(gpu::Platform &platform)
{
    workloads::MemCopyParams copy;
    copy.bytes = 16ull << 20;
    auto copyKernel = workloads::makeMemCopy(copy);

    workloads::FirParams fir;
    fir.numSamples = 1u << 19;
    auto firKernel = workloads::makeFir(fir);

    platform.launchKernel(&copyKernel);
    platform.launchKernel(&firKernel);
    return platform.run() == gpu::Platform::RunStatus::Completed ? 0 : 1;
}

/** --fleet=N path: N platform+monitor pairs behind one gateway. */
int
runFleet(const gpu::PlatformConfig &cfg, std::uint16_t port, bool once)
{
    rtm::FleetConfig fcfg;
    fcfg.numSims = static_cast<std::size_t>(cfg.fleet);
    fcfg.platform = cfg;
    fcfg.monitor.recordPath = ""; // One segment file can't serve N sims.
    fcfg.gateway.port = port;
    rtm::Fleet fleet(fcfg);
    if (!fleet.start()) {
        std::fprintf(stderr,
                     "could not bind port %u (set AKITA_PORT=0 for an "
                     "ephemeral port)\n",
                     port);
        return 1;
    }

    std::printf("running %zu simulations; watch them at %s\n",
                fleet.size(), fleet.gateway().url().c_str());
    std::atomic<int> failures{0};
    fleet.runAll([&failures](std::size_t, gpu::Platform &p) {
        if (runKernels(p) != 0)
            failures.fetch_add(1);
    });
    std::printf("fleet done (%d of %zu failed)\n", failures.load(),
                fleet.size());

    if (!once) {
        std::printf("gateway still serving (Ctrl-C to quit)...\n");
        while (true)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    fleet.stop();
    return failures.load() == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool once = false;
    for (int i = 1; i < argc; i++)
        once = once || std::strcmp(argv[i], "--once") == 0;

    // 1. Build the simulated hardware: 4 chiplets, tiny shape so the
    //    quickstart runs in seconds.
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::applyEngineArgs(cfg, argc, argv); // --engine= / --fleet= / ...

    const char *portEnv = std::getenv("AKITA_PORT");
    std::uint16_t port =
        portEnv ? static_cast<std::uint16_t>(std::atoi(portEnv)) : 8080;

    if (cfg.fleet > 1)
        return runFleet(cfg, port, once);

    gpu::Platform platform(cfg);

    // 2. Attach the monitor: register the engine and every component,
    //    hook kernel progress into the dashboard's progress bars.
    rtm::MonitorConfig mcfg;
    mcfg.port = port;
    mcfg.recordPath = cfg.recordPath; // --record= / AKITA_RECORD
    mcfg.recordSegmentBytes = cfg.recordSegmentBytes;
    rtm::Monitor monitor(mcfg);
    monitor.registerEngine(&platform.engine());
    monitor.registerComponents(platform.components());
    for (auto *conn : platform.connections())
        monitor.registerConnection(conn); // /api/topology
    platform.driver().setProgressListener(&monitor);

    if (!monitor.startServer()) {
        std::fprintf(stderr,
                     "could not bind port %u (set AKITA_PORT=0 for an "
                     "ephemeral port)\n",
                     mcfg.port);
        return 1;
    }

    // 3. Launch work: one bandwidth-bound kernel, one compute-heavy.
    workloads::MemCopyParams copy;
    copy.bytes = 16ull << 20;
    auto copyKernel = workloads::makeMemCopy(copy);

    workloads::FirParams fir;
    fir.numSamples = 1u << 19;
    auto firKernel = workloads::makeFir(fir);

    platform.launchKernel(&copyKernel);
    platform.launchKernel(&firKernel);

    // 4. Run. With the monitor attached, pausing/resuming and the
    //    per-component "Tick" button work from the browser while this
    //    call executes.
    std::printf("running 2 kernels; watch them at %s\n",
                monitor.url().c_str());
    auto status = platform.run();

    std::printf("simulation %s at %s (%llu events)\n",
                status == gpu::Platform::RunStatus::Completed
                    ? "completed"
                    : "did not complete",
                sim::formatTime(platform.engine().now()).c_str(),
                static_cast<unsigned long long>(
                    platform.engine().eventCount()));

    if (!once) {
        std::printf("dashboard still serving (Ctrl-C to quit)...\n");
        while (true)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    monitor.stopServer();
    return status == gpu::Platform::RunStatus::Completed ? 0 : 1;
}
