/**
 * @file
 * Case study 1 (paper §V-A), interactive: performance analysis of
 * im2col on a 4-chiplet MCM GPU.
 *
 * Runs the exact workflow of the paper with a live dashboard, narrating
 * each step on the terminal:
 *   1. initial assessment (progress bars + timer moving),
 *   2. bottleneck identification (buffer analyzer: ROB top ports 8/8),
 *   3. hypothesis testing with the value monitor (ROB transactions
 *      fluctuate, L1 pinned at its MSHR limit, RDMA piling up).
 *
 * Open the printed URL to follow along in the browser; the same data is
 * printed here.
 */

#include <cstdio>
#include <thread>

#include "gpu/platform.hh"
#include "rtm/monitor.hh"
#include "workloads/workloads.hh"

using namespace akita;

namespace
{

void
step(const char *text)
{
    std::printf("\n--- %s\n", text);
}

} // namespace

int
main(int argc, char **argv)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::medium());
    gpu::applyEngineArgs(cfg, argc, argv); // --engine= / --workers=
    gpu::Platform platform(cfg);

    rtm::Monitor monitor;
    monitor.registerEngine(&platform.engine());
    monitor.registerComponents(platform.components());
    platform.driver().setProgressListener(&monitor);
    monitor.startServer();

    // The paper's parameters: 24x24 images, six channels, batch 640
    // (reduced by default so the walk-through takes seconds; export
    // AKITA_BATCH=640 for the full run).
    workloads::Im2ColParams params;
    const char *batch = std::getenv("AKITA_BATCH");
    params.batch = batch ? static_cast<std::uint32_t>(std::atoi(batch))
                         : 96;
    auto kernel = workloads::makeIm2Col(params);
    platform.launchKernel(&kernel);

    std::thread sim([&]() { platform.run(); });

    step("step 1: initial simulation assessment");
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    auto bars = monitor.progressBars();
    if (!bars.empty()) {
        std::printf("progress bar: %llu done / %llu in flight / %llu "
                    "total — the simulation is progressing\n",
                    static_cast<unsigned long long>(bars[0].completed),
                    static_cast<unsigned long long>(bars[0].inProgress),
                    static_cast<unsigned long long>(bars[0].total));
    }
    std::printf("simulation time advancing: %s\n",
                sim::formatTime(platform.engine().now()).c_str());

    step("step 2: bottleneck identification (buffer analyzer)");
    auto levels = monitor.bufferLevels(rtm::BufferSort::BySize, 8);
    for (const auto &row : levels) {
        std::printf("  %-46s %zu/%zu\n", row.name.c_str(), row.size,
                    row.capacity);
    }
    std::printf("the L1VROB TopPort buffers sit at the top with a "
                "consistently high size-to-capacity ratio\n");

    step("step 3: track values over time (the paper's Fig. 5)");
    auto sRob = monitor.trackValue("GPU[0].SA[0].L1VROB[0]",
                                   "transactions");
    auto sL1 = monitor.trackValue("GPU[0].SA[0].L1VCache[0]",
                                  "transactions");
    auto sRdma = monitor.trackValue("GPU[0].RDMA", "transactions");
    std::this_thread::sleep_for(std::chrono::milliseconds(800));

    auto describe = [&](std::uint64_t id, const char *label) {
        auto series = monitor.valueSeries(id);
        if (series.samples.empty()) {
            std::printf("  %-28s (no samples yet)\n", label);
            return;
        }
        double minV = series.samples[0].value, maxV = minV, last = 0;
        for (const auto &s : series.samples) {
            minV = std::min(minV, s.value);
            maxV = std::max(maxV, s.value);
            last = s.value;
        }
        std::printf("  %-28s min=%-5.0f max=%-5.0f now=%-5.0f\n", label,
                    minV, maxV, last);
    };
    describe(sRob, "ROB transactions:");
    describe(sL1, "L1 cache transactions:");
    describe(sRdma, "RDMA transactions:");

    std::printf("\nreading: the ROB fluctuates (not the limiter), the "
                "L1 sits at its MSHR limit, and the RDMA holds by far "
                "the most transactions — the inter-chiplet network is "
                "the bottleneck, as in the paper.\n");

    sim.join();
    std::printf("\nsimulation completed at %s\n",
                sim::formatTime(platform.engine().now()).c_str());
    monitor.stopServer();
    return 0;
}
