# Empty compiler generated dependencies file for l2_deadlock_test.
# This may be replaced when dependencies are built.
