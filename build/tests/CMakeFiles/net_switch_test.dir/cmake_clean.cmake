file(REMOVE_RECURSE
  "CMakeFiles/net_switch_test.dir/net_switch_test.cc.o"
  "CMakeFiles/net_switch_test.dir/net_switch_test.cc.o.d"
  "net_switch_test"
  "net_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
