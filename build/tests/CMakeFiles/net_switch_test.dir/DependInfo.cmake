
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_switch_test.cc" "tests/CMakeFiles/net_switch_test.dir/net_switch_test.cc.o" "gcc" "tests/CMakeFiles/net_switch_test.dir/net_switch_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtm/CMakeFiles/akita_rtm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/akita_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/akita_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/akita_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/akita_net.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/akita_web.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/akita_json.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/akita_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
