file(REMOVE_RECURSE
  "CMakeFiles/rtm_http_test.dir/rtm_http_test.cc.o"
  "CMakeFiles/rtm_http_test.dir/rtm_http_test.cc.o.d"
  "rtm_http_test"
  "rtm_http_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtm_http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
