# Empty dependencies file for rtm_http_test.
# This may be replaced when dependencies are built.
