file(REMOVE_RECURSE
  "CMakeFiles/rdma_net_test.dir/rdma_net_test.cc.o"
  "CMakeFiles/rdma_net_test.dir/rdma_net_test.cc.o.d"
  "rdma_net_test"
  "rdma_net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
