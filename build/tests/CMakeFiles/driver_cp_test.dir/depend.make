# Empty dependencies file for driver_cp_test.
# This may be replaced when dependencies are built.
