file(REMOVE_RECURSE
  "CMakeFiles/driver_cp_test.dir/driver_cp_test.cc.o"
  "CMakeFiles/driver_cp_test.dir/driver_cp_test.cc.o.d"
  "driver_cp_test"
  "driver_cp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_cp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
