# Empty dependencies file for rtm_ext_test.
# This may be replaced when dependencies are built.
