file(REMOVE_RECURSE
  "CMakeFiles/rtm_ext_test.dir/rtm_ext_test.cc.o"
  "CMakeFiles/rtm_ext_test.dir/rtm_ext_test.cc.o.d"
  "rtm_ext_test"
  "rtm_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtm_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
