# Empty dependencies file for rtm_test.
# This may be replaced when dependencies are built.
