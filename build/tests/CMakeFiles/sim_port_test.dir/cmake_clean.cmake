file(REMOVE_RECURSE
  "CMakeFiles/sim_port_test.dir/sim_port_test.cc.o"
  "CMakeFiles/sim_port_test.dir/sim_port_test.cc.o.d"
  "sim_port_test"
  "sim_port_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
