file(REMOVE_RECURSE
  "libakita_mem.a"
)
