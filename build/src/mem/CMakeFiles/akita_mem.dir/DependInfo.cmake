
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/akita_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/akita_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/akita_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/akita_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/l2cache.cc" "src/mem/CMakeFiles/akita_mem.dir/l2cache.cc.o" "gcc" "src/mem/CMakeFiles/akita_mem.dir/l2cache.cc.o.d"
  "/root/repo/src/mem/rdma.cc" "src/mem/CMakeFiles/akita_mem.dir/rdma.cc.o" "gcc" "src/mem/CMakeFiles/akita_mem.dir/rdma.cc.o.d"
  "/root/repo/src/mem/rob.cc" "src/mem/CMakeFiles/akita_mem.dir/rob.cc.o" "gcc" "src/mem/CMakeFiles/akita_mem.dir/rob.cc.o.d"
  "/root/repo/src/mem/translator.cc" "src/mem/CMakeFiles/akita_mem.dir/translator.cc.o" "gcc" "src/mem/CMakeFiles/akita_mem.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/akita_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
