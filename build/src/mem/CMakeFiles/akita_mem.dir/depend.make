# Empty dependencies file for akita_mem.
# This may be replaced when dependencies are built.
