file(REMOVE_RECURSE
  "CMakeFiles/akita_mem.dir/cache.cc.o"
  "CMakeFiles/akita_mem.dir/cache.cc.o.d"
  "CMakeFiles/akita_mem.dir/dram.cc.o"
  "CMakeFiles/akita_mem.dir/dram.cc.o.d"
  "CMakeFiles/akita_mem.dir/l2cache.cc.o"
  "CMakeFiles/akita_mem.dir/l2cache.cc.o.d"
  "CMakeFiles/akita_mem.dir/rdma.cc.o"
  "CMakeFiles/akita_mem.dir/rdma.cc.o.d"
  "CMakeFiles/akita_mem.dir/rob.cc.o"
  "CMakeFiles/akita_mem.dir/rob.cc.o.d"
  "CMakeFiles/akita_mem.dir/translator.cc.o"
  "CMakeFiles/akita_mem.dir/translator.cc.o.d"
  "libakita_mem.a"
  "libakita_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
