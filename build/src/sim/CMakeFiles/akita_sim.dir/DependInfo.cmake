
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/buffer.cc" "src/sim/CMakeFiles/akita_sim.dir/buffer.cc.o" "gcc" "src/sim/CMakeFiles/akita_sim.dir/buffer.cc.o.d"
  "/root/repo/src/sim/component.cc" "src/sim/CMakeFiles/akita_sim.dir/component.cc.o" "gcc" "src/sim/CMakeFiles/akita_sim.dir/component.cc.o.d"
  "/root/repo/src/sim/connection.cc" "src/sim/CMakeFiles/akita_sim.dir/connection.cc.o" "gcc" "src/sim/CMakeFiles/akita_sim.dir/connection.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/akita_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/akita_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/port.cc" "src/sim/CMakeFiles/akita_sim.dir/port.cc.o" "gcc" "src/sim/CMakeFiles/akita_sim.dir/port.cc.o.d"
  "/root/repo/src/sim/prof.cc" "src/sim/CMakeFiles/akita_sim.dir/prof.cc.o" "gcc" "src/sim/CMakeFiles/akita_sim.dir/prof.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/sim/CMakeFiles/akita_sim.dir/time.cc.o" "gcc" "src/sim/CMakeFiles/akita_sim.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
