file(REMOVE_RECURSE
  "libakita_sim.a"
)
