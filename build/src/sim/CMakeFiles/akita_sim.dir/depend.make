# Empty dependencies file for akita_sim.
# This may be replaced when dependencies are built.
