file(REMOVE_RECURSE
  "CMakeFiles/akita_sim.dir/buffer.cc.o"
  "CMakeFiles/akita_sim.dir/buffer.cc.o.d"
  "CMakeFiles/akita_sim.dir/component.cc.o"
  "CMakeFiles/akita_sim.dir/component.cc.o.d"
  "CMakeFiles/akita_sim.dir/connection.cc.o"
  "CMakeFiles/akita_sim.dir/connection.cc.o.d"
  "CMakeFiles/akita_sim.dir/engine.cc.o"
  "CMakeFiles/akita_sim.dir/engine.cc.o.d"
  "CMakeFiles/akita_sim.dir/port.cc.o"
  "CMakeFiles/akita_sim.dir/port.cc.o.d"
  "CMakeFiles/akita_sim.dir/prof.cc.o"
  "CMakeFiles/akita_sim.dir/prof.cc.o.d"
  "CMakeFiles/akita_sim.dir/time.cc.o"
  "CMakeFiles/akita_sim.dir/time.cc.o.d"
  "libakita_sim.a"
  "libakita_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
