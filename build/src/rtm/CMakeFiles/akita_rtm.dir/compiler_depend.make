# Empty compiler generated dependencies file for akita_rtm.
# This may be replaced when dependencies are built.
