
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtm/api.cc" "src/rtm/CMakeFiles/akita_rtm.dir/api.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/api.cc.o.d"
  "/root/repo/src/rtm/bufferanalyzer.cc" "src/rtm/CMakeFiles/akita_rtm.dir/bufferanalyzer.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/bufferanalyzer.cc.o.d"
  "/root/repo/src/rtm/frontend.cc" "src/rtm/CMakeFiles/akita_rtm.dir/frontend.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/frontend.cc.o.d"
  "/root/repo/src/rtm/hang.cc" "src/rtm/CMakeFiles/akita_rtm.dir/hang.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/hang.cc.o.d"
  "/root/repo/src/rtm/monitor.cc" "src/rtm/CMakeFiles/akita_rtm.dir/monitor.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/monitor.cc.o.d"
  "/root/repo/src/rtm/progressbar.cc" "src/rtm/CMakeFiles/akita_rtm.dir/progressbar.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/progressbar.cc.o.d"
  "/root/repo/src/rtm/registry.cc" "src/rtm/CMakeFiles/akita_rtm.dir/registry.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/registry.cc.o.d"
  "/root/repo/src/rtm/resources.cc" "src/rtm/CMakeFiles/akita_rtm.dir/resources.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/resources.cc.o.d"
  "/root/repo/src/rtm/serialize.cc" "src/rtm/CMakeFiles/akita_rtm.dir/serialize.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/serialize.cc.o.d"
  "/root/repo/src/rtm/throughput.cc" "src/rtm/CMakeFiles/akita_rtm.dir/throughput.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/throughput.cc.o.d"
  "/root/repo/src/rtm/valuemonitor.cc" "src/rtm/CMakeFiles/akita_rtm.dir/valuemonitor.cc.o" "gcc" "src/rtm/CMakeFiles/akita_rtm.dir/valuemonitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/akita_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/akita_json.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/akita_web.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
