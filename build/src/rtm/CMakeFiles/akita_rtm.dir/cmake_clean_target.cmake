file(REMOVE_RECURSE
  "libakita_rtm.a"
)
