file(REMOVE_RECURSE
  "CMakeFiles/akita_rtm.dir/api.cc.o"
  "CMakeFiles/akita_rtm.dir/api.cc.o.d"
  "CMakeFiles/akita_rtm.dir/bufferanalyzer.cc.o"
  "CMakeFiles/akita_rtm.dir/bufferanalyzer.cc.o.d"
  "CMakeFiles/akita_rtm.dir/frontend.cc.o"
  "CMakeFiles/akita_rtm.dir/frontend.cc.o.d"
  "CMakeFiles/akita_rtm.dir/hang.cc.o"
  "CMakeFiles/akita_rtm.dir/hang.cc.o.d"
  "CMakeFiles/akita_rtm.dir/monitor.cc.o"
  "CMakeFiles/akita_rtm.dir/monitor.cc.o.d"
  "CMakeFiles/akita_rtm.dir/progressbar.cc.o"
  "CMakeFiles/akita_rtm.dir/progressbar.cc.o.d"
  "CMakeFiles/akita_rtm.dir/registry.cc.o"
  "CMakeFiles/akita_rtm.dir/registry.cc.o.d"
  "CMakeFiles/akita_rtm.dir/resources.cc.o"
  "CMakeFiles/akita_rtm.dir/resources.cc.o.d"
  "CMakeFiles/akita_rtm.dir/serialize.cc.o"
  "CMakeFiles/akita_rtm.dir/serialize.cc.o.d"
  "CMakeFiles/akita_rtm.dir/throughput.cc.o"
  "CMakeFiles/akita_rtm.dir/throughput.cc.o.d"
  "CMakeFiles/akita_rtm.dir/valuemonitor.cc.o"
  "CMakeFiles/akita_rtm.dir/valuemonitor.cc.o.d"
  "libakita_rtm.a"
  "libakita_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
