file(REMOVE_RECURSE
  "libakita_workloads.a"
)
