# Empty dependencies file for akita_workloads.
# This may be replaced when dependencies are built.
