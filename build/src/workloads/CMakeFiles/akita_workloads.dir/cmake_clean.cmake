file(REMOVE_RECURSE
  "CMakeFiles/akita_workloads.dir/workloads.cc.o"
  "CMakeFiles/akita_workloads.dir/workloads.cc.o.d"
  "libakita_workloads.a"
  "libakita_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
