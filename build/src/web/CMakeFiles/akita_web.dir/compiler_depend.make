# Empty compiler generated dependencies file for akita_web.
# This may be replaced when dependencies are built.
