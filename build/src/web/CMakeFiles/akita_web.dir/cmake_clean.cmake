file(REMOVE_RECURSE
  "CMakeFiles/akita_web.dir/client.cc.o"
  "CMakeFiles/akita_web.dir/client.cc.o.d"
  "CMakeFiles/akita_web.dir/http.cc.o"
  "CMakeFiles/akita_web.dir/http.cc.o.d"
  "CMakeFiles/akita_web.dir/server.cc.o"
  "CMakeFiles/akita_web.dir/server.cc.o.d"
  "libakita_web.a"
  "libakita_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
