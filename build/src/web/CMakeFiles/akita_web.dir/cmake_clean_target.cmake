file(REMOVE_RECURSE
  "libakita_web.a"
)
