file(REMOVE_RECURSE
  "libakita_net.a"
)
