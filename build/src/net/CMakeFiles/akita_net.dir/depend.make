# Empty dependencies file for akita_net.
# This may be replaced when dependencies are built.
