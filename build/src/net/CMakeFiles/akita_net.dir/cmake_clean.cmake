file(REMOVE_RECURSE
  "CMakeFiles/akita_net.dir/switch.cc.o"
  "CMakeFiles/akita_net.dir/switch.cc.o.d"
  "CMakeFiles/akita_net.dir/switched.cc.o"
  "CMakeFiles/akita_net.dir/switched.cc.o.d"
  "libakita_net.a"
  "libakita_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
