file(REMOVE_RECURSE
  "CMakeFiles/akita_json.dir/json.cc.o"
  "CMakeFiles/akita_json.dir/json.cc.o.d"
  "libakita_json.a"
  "libakita_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
