# Empty compiler generated dependencies file for akita_json.
# This may be replaced when dependencies are built.
