file(REMOVE_RECURSE
  "libakita_json.a"
)
