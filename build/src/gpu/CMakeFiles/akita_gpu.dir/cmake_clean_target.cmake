file(REMOVE_RECURSE
  "libakita_gpu.a"
)
