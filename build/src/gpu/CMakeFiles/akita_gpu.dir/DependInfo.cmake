
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cp.cc" "src/gpu/CMakeFiles/akita_gpu.dir/cp.cc.o" "gcc" "src/gpu/CMakeFiles/akita_gpu.dir/cp.cc.o.d"
  "/root/repo/src/gpu/cu.cc" "src/gpu/CMakeFiles/akita_gpu.dir/cu.cc.o" "gcc" "src/gpu/CMakeFiles/akita_gpu.dir/cu.cc.o.d"
  "/root/repo/src/gpu/driver.cc" "src/gpu/CMakeFiles/akita_gpu.dir/driver.cc.o" "gcc" "src/gpu/CMakeFiles/akita_gpu.dir/driver.cc.o.d"
  "/root/repo/src/gpu/platform.cc" "src/gpu/CMakeFiles/akita_gpu.dir/platform.cc.o" "gcc" "src/gpu/CMakeFiles/akita_gpu.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/akita_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/akita_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/akita_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
