file(REMOVE_RECURSE
  "CMakeFiles/akita_gpu.dir/cp.cc.o"
  "CMakeFiles/akita_gpu.dir/cp.cc.o.d"
  "CMakeFiles/akita_gpu.dir/cu.cc.o"
  "CMakeFiles/akita_gpu.dir/cu.cc.o.d"
  "CMakeFiles/akita_gpu.dir/driver.cc.o"
  "CMakeFiles/akita_gpu.dir/driver.cc.o.d"
  "CMakeFiles/akita_gpu.dir/platform.cc.o"
  "CMakeFiles/akita_gpu.dir/platform.cc.o.d"
  "libakita_gpu.a"
  "libakita_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
