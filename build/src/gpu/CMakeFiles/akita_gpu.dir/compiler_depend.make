# Empty compiler generated dependencies file for akita_gpu.
# This may be replaced when dependencies are built.
