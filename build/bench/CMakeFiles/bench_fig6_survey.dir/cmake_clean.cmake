file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_survey.dir/bench_fig6_survey.cc.o"
  "CMakeFiles/bench_fig6_survey.dir/bench_fig6_survey.cc.o.d"
  "bench_fig6_survey"
  "bench_fig6_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
