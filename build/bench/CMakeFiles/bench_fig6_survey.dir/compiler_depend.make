# Empty compiler generated dependencies file for bench_fig6_survey.
# This may be replaced when dependencies are built.
