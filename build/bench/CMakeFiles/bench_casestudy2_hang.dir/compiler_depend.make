# Empty compiler generated dependencies file for bench_casestudy2_hang.
# This may be replaced when dependencies are built.
