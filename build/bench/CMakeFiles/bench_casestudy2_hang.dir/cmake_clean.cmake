file(REMOVE_RECURSE
  "CMakeFiles/bench_casestudy2_hang.dir/bench_casestudy2_hang.cc.o"
  "CMakeFiles/bench_casestudy2_hang.dir/bench_casestudy2_hang.cc.o.d"
  "bench_casestudy2_hang"
  "bench_casestudy2_hang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_casestudy2_hang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
