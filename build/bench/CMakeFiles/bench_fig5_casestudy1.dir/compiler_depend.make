# Empty compiler generated dependencies file for bench_fig5_casestudy1.
# This may be replaced when dependencies are built.
