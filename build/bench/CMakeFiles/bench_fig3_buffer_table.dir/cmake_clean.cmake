file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_buffer_table.dir/bench_fig3_buffer_table.cc.o"
  "CMakeFiles/bench_fig3_buffer_table.dir/bench_fig3_buffer_table.cc.o.d"
  "bench_fig3_buffer_table"
  "bench_fig3_buffer_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_buffer_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
