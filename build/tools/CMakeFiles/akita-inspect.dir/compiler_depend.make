# Empty compiler generated dependencies file for akita-inspect.
# This may be replaced when dependencies are built.
