file(REMOVE_RECURSE
  "CMakeFiles/akita-inspect.dir/akita_inspect.cc.o"
  "CMakeFiles/akita-inspect.dir/akita_inspect.cc.o.d"
  "akita-inspect"
  "akita-inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akita-inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
