file(REMOVE_RECURSE
  "CMakeFiles/hang_debug.dir/hang_debug.cpp.o"
  "CMakeFiles/hang_debug.dir/hang_debug.cpp.o.d"
  "hang_debug"
  "hang_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hang_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
