# Empty dependencies file for hang_debug.
# This may be replaced when dependencies are built.
