# Empty dependencies file for remote_monitor.
# This may be replaced when dependencies are built.
