file(REMOVE_RECURSE
  "CMakeFiles/remote_monitor.dir/remote_monitor.cpp.o"
  "CMakeFiles/remote_monitor.dir/remote_monitor.cpp.o.d"
  "remote_monitor"
  "remote_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
