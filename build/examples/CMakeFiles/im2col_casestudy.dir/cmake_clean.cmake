file(REMOVE_RECURSE
  "CMakeFiles/im2col_casestudy.dir/im2col_casestudy.cpp.o"
  "CMakeFiles/im2col_casestudy.dir/im2col_casestudy.cpp.o.d"
  "im2col_casestudy"
  "im2col_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/im2col_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
