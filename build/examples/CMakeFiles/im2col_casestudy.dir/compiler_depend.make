# Empty compiler generated dependencies file for im2col_casestudy.
# This may be replaced when dependencies are built.
