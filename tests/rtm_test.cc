/**
 * @file
 * Unit tests for the RTM core: registry/tree, progress bars, buffer
 * analyzer, value monitor (300-point / 5-series limits), hang watch,
 * resource sampling, and serialization.
 */

#include <gtest/gtest.h>

#include <thread>

#include "rtm/monitor.hh"
#include "rtm/serialize.hh"
#include "sim/sim.hh"

using namespace akita;
using namespace akita::rtm;

namespace
{

class Dummy : public sim::Component
{
  public:
    Dummy(sim::Engine *engine, const std::string &name,
          std::size_t buf_cap = 4)
        : Component(engine, name)
    {
        port = addPort("TopPort", buf_cap);
        declareField("level", [this]() {
            return introspect::Value::ofInt(level);
        });
    }

    sim::Port *port;
    std::int64_t level = 0;
};

} // namespace

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, FindAndReplace)
{
    sim::SerialEngine eng;
    Dummy a(&eng, "GPU[0].X");
    ComponentRegistry reg;
    reg.add(&a);
    EXPECT_EQ(reg.find("GPU[0].X"), &a);
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_EQ(reg.size(), 1u);

    Dummy a2(&eng, "GPU[0].X");
    reg.add(&a2);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.find("GPU[0].X"), &a2);
}

TEST(Registry, TreeFromDottedNames)
{
    sim::SerialEngine eng;
    Dummy a(&eng, "GPU[0].SA[0].CU[0]");
    Dummy b(&eng, "GPU[0].SA[0].CU[1]");
    Dummy c(&eng, "GPU[0].L2[0]");
    Dummy d(&eng, "Driver");
    ComponentRegistry reg;
    reg.add(&a);
    reg.add(&b);
    reg.add(&c);
    reg.add(&d);

    TreeNode root = reg.buildTree();
    ASSERT_EQ(root.children.size(), 2u); // "GPU[0]" and "Driver".
    const auto &gpu = root.children.at("GPU[0]");
    EXPECT_EQ(gpu->children.size(), 2u); // SA[0], L2[0].
    const auto &sa = gpu->children.at("SA[0]");
    EXPECT_EQ(sa->children.size(), 2u);
    EXPECT_EQ(sa->children.at("CU[0]")->componentName,
              "GPU[0].SA[0].CU[0]");
    EXPECT_EQ(root.children.at("Driver")->componentName, "Driver");
}

// ---------------------------------------------------------------------
// Progress bars
// ---------------------------------------------------------------------

TEST(ProgressBars, CreateUpdateDestroy)
{
    ProgressBarRegistry reg;
    auto id = reg.create("kernel fir", 100);
    EXPECT_GT(id, 0u);
    EXPECT_TRUE(reg.update(id, 40, 10));

    auto bars = reg.snapshot();
    ASSERT_EQ(bars.size(), 1u);
    EXPECT_EQ(bars[0].completed, 40u);
    EXPECT_EQ(bars[0].inProgress, 10u);
    EXPECT_EQ(bars[0].notStarted(), 50u);

    EXPECT_TRUE(reg.destroy(id));
    EXPECT_FALSE(reg.destroy(id));
    EXPECT_FALSE(reg.update(id, 1, 1));
    EXPECT_EQ(reg.size(), 0u);
}

TEST(ProgressBars, ThreeSegmentsNeverNegative)
{
    ProgressBarRegistry reg;
    auto id = reg.create("b", 10);
    reg.update(id, 8, 5); // Overshoot: completed+inProgress > total.
    auto bars = reg.snapshot();
    EXPECT_EQ(bars[0].notStarted(), 0u);
}

TEST(ProgressBars, SetTotalForLateKnownCounts)
{
    ProgressBarRegistry reg;
    auto id = reg.create("copy", 0);
    EXPECT_TRUE(reg.setTotal(id, 4096));
    EXPECT_EQ(reg.snapshot()[0].total, 4096u);
}

TEST(ProgressBars, ManyBarsIndependent)
{
    ProgressBarRegistry reg;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 10; i++)
        ids.push_back(reg.create("bar" + std::to_string(i), 100));
    reg.update(ids[3], 33, 0);
    reg.destroy(ids[5]);
    auto bars = reg.snapshot();
    EXPECT_EQ(bars.size(), 9u);
    for (const auto &b : bars) {
        if (b.id == ids[3]) {
            EXPECT_EQ(b.completed, 33u);
        }
        EXPECT_NE(b.id, ids[5]);
    }
}

// ---------------------------------------------------------------------
// Buffer analyzer
// ---------------------------------------------------------------------

TEST(BufferAnalyzerTest, RanksBySizeAndPercent)
{
    sim::SerialEngine eng;
    Dummy big(&eng, "Big", 16);
    Dummy small(&eng, "Small", 2);
    ComponentRegistry reg;
    reg.add(&big);
    reg.add(&small);
    BufferAnalyzer analyzer(&reg);

    auto msg = sim::makeMsg<sim::Msg>();
    for (int i = 0; i < 4; i++)
        big.port->buf().push(sim::makeMsg<sim::Msg>());
    small.port->buf().push(sim::makeMsg<sim::Msg>());
    small.port->buf().push(sim::makeMsg<sim::Msg>());

    auto bySize = analyzer.snapshot(BufferSort::BySize);
    ASSERT_EQ(bySize.size(), 2u);
    EXPECT_EQ(bySize[0].name, "Big.TopPort.Buf"); // 4 > 2.

    auto byPct = analyzer.snapshot(BufferSort::ByPercent);
    EXPECT_EQ(byPct[0].name, "Small.TopPort.Buf"); // 100% > 25%.
    EXPECT_DOUBLE_EQ(byPct[0].percent(), 100.0);

    auto top1 = analyzer.snapshot(BufferSort::BySize, 1);
    EXPECT_EQ(top1.size(), 1u);
}

TEST(BufferAnalyzerTest, NonEmptyFiltersIdleBuffers)
{
    sim::SerialEngine eng;
    Dummy idle(&eng, "Idle", 4);
    Dummy busy(&eng, "Busy", 4);
    ComponentRegistry reg;
    reg.add(&idle);
    reg.add(&busy);
    BufferAnalyzer analyzer(&reg);
    busy.port->buf().push(sim::makeMsg<sim::Msg>());

    auto rows = analyzer.nonEmpty();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].name, "Busy.TopPort.Buf");
}

TEST(BufferAnalyzerTest, SeesRegisteredInternalBuffers)
{
    sim::SerialEngine eng;
    Dummy d(&eng, "L2");
    sim::Buffer internal("L2.WriteBuf.InBuf", 8);
    d.registerBuffer(&internal);
    ComponentRegistry reg;
    reg.add(&d);
    BufferAnalyzer analyzer(&reg);
    auto rows = analyzer.snapshot(BufferSort::BySize);
    EXPECT_EQ(rows.size(), 2u);
}

// ---------------------------------------------------------------------
// Value monitor
// ---------------------------------------------------------------------

TEST(ValueMonitorTest, TracksAndSamples)
{
    ValueMonitor vm;
    int x = 0;
    auto id = vm.track("C", "x", [&x]() {
        return introspect::Value::ofInt(x);
    });
    ASSERT_GT(id, 0u);

    for (int i = 0; i < 10; i++) {
        x = i * i;
        vm.sampleAll(static_cast<sim::VTime>(i) * 1000);
    }
    TrackedSeries s = vm.series(id);
    ASSERT_EQ(s.samples.size(), 10u);
    EXPECT_EQ(s.samples[3].value, 9.0);
    EXPECT_EQ(s.samples[3].simTime, 3000u);
    EXPECT_EQ(s.componentName, "C");
    EXPECT_EQ(s.fieldName, "x");
}

TEST(ValueMonitorTest, RingKeepsMostRecent300)
{
    // Paper: "keep only the most recent 300 data points".
    ValueMonitor vm;
    int x = 0;
    auto id = vm.track("C", "x", [&x]() {
        return introspect::Value::ofInt(x);
    });
    for (int i = 0; i < 1000; i++) {
        x = i;
        vm.sampleAll(static_cast<sim::VTime>(i));
    }
    TrackedSeries s = vm.series(id);
    ASSERT_EQ(s.samples.size(), ValueMonitor::kMaxPoints);
    EXPECT_EQ(s.samples.front().value, 700.0);
    EXPECT_EQ(s.samples.back().value, 999.0);
}

TEST(ValueMonitorTest, FiveSeriesLimit)
{
    // Paper: "plots up to five individual values over time".
    ValueMonitor vm;
    auto getter = []() { return introspect::Value::ofInt(0); };
    for (int i = 0; i < 5; i++)
        EXPECT_GT(vm.track("C", "f" + std::to_string(i), getter), 0u);
    EXPECT_EQ(vm.track("C", "f5", getter), 0u) << "sixth rejected";

    // Untracking frees a slot.
    TrackedSeries first = vm.allSeries()[0];
    EXPECT_TRUE(vm.untrack(first.id));
    EXPECT_GT(vm.track("C", "f6", getter), 0u);
}

TEST(ValueMonitorTest, UnknownIdHandling)
{
    ValueMonitor vm;
    EXPECT_FALSE(vm.untrack(99));
    EXPECT_EQ(vm.series(99).id, 0u);
}

// ---------------------------------------------------------------------
// Hang watch
// ---------------------------------------------------------------------

TEST(HangWatchTest, DetectsFrozenTime)
{
    sim::SerialEngine eng;
    eng.setConcurrentAccess(true);
    eng.setWaitWhenEmpty(true);
    HangWatch watch(&eng, 0.05);

    eng.scheduleAt(10, "e", []() {});
    std::thread runner([&]() { eng.run(); });

    // Let it drain and freeze.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    watch.check(); // Baseline.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    HangStatus st = watch.check();
    EXPECT_TRUE(st.hanging);
    EXPECT_TRUE(st.queueDrained);
    EXPECT_GE(st.frozenForSec, 0.05);

    eng.stop();
    runner.join();
}

TEST(HangWatchTest, NoHangWhileAdvancing)
{
    sim::SerialEngine eng;
    HangWatch watch(&eng, 0.01);
    eng.scheduleAt(5, "e", []() {});
    watch.check();
    eng.run();
    HangStatus st = watch.check();
    EXPECT_FALSE(st.hanging) << "time advanced since last check";
}

TEST(HangWatchTest, PausedIsNotHanging)
{
    sim::SerialEngine eng;
    eng.setConcurrentAccess(true);
    eng.pause();
    HangWatch watch(&eng, 0.01);
    watch.check();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    HangStatus st = watch.check();
    EXPECT_FALSE(st.hanging) << "not running => not a hang";
}

// ---------------------------------------------------------------------
// Resources
// ---------------------------------------------------------------------

TEST(ResourceMonitorTest, ReportsMemoryAndThreads)
{
    ResourceMonitor rm;
    ResourceUsage u = rm.sample();
    EXPECT_GT(u.rssBytes, 1024u * 1024u);
    EXPECT_GE(u.numThreads, 1u);
}

TEST(ResourceMonitorTest, CpuPercentReflectsBusyWork)
{
    ResourceMonitor rm;
    rm.sample(); // Baseline.
    auto end = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(150);
    volatile std::uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < end)
        sink = sink + 1;
    ResourceUsage u = rm.sample();
    EXPECT_GT(u.cpuPercent, 30.0);
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

TEST(Serialize, ValueToJson)
{
    using introspect::Value;
    EXPECT_EQ(toJson(Value()).dump(), "null");
    EXPECT_EQ(toJson(Value::ofInt(3)).dump(), "3");
    EXPECT_EQ(toJson(Value::ofStr("s")).dump(), "\"s\"");
    EXPECT_EQ(toJson(Value::ofList({Value::ofInt(1)})).dump(), "[1]");
    EXPECT_EQ(
        toJson(Value::ofDict({{"k", Value::ofBool(true)}})).dump(),
        "{\"k\":true}");
}

TEST(Serialize, ComponentSnapshotShape)
{
    sim::SerialEngine eng;
    Dummy d(&eng, "GPU[0].X");
    d.level = 9;
    json::Json j = serializeComponent(d);
    EXPECT_EQ(j.getStr("name"), "GPU[0].X");
    const json::Json *fields = j.get("fields");
    ASSERT_NE(fields, nullptr);
    ASSERT_GE(fields->size(), 1u);
    EXPECT_EQ(fields->at(0).getStr("name"), "level");
    EXPECT_EQ(fields->at(0).getInt("value", -1), 9);
    const json::Json *ports = j.get("ports");
    ASSERT_NE(ports, nullptr);
    EXPECT_EQ(ports->at(0).getStr("name"), "TopPort");
}

TEST(Serialize, BufferTableMatchesFig3Columns)
{
    std::vector<BufferLevel> rows = {
        {"GPU[1].SA[15].L1VROB[0].TopPort.Buf", 8, 8},
        {"GPU[1].SA[7].L1VAddrTrans[1].TopPort.Buf", 4, 4},
    };
    json::Json j = serializeBuffers(rows);
    ASSERT_EQ(j.size(), 2u);
    EXPECT_EQ(j.at(0).getStr("buffer"),
              "GPU[1].SA[15].L1VROB[0].TopPort.Buf");
    EXPECT_EQ(j.at(0).getInt("size", 0), 8);
    EXPECT_EQ(j.at(0).getInt("cap", 0), 8);
    EXPECT_DOUBLE_EQ(j.at(0).getNumber("percent", 0), 100.0);
}

TEST(Serialize, SeriesToJson)
{
    TrackedSeries s;
    s.id = 2;
    s.componentName = "C";
    s.fieldName = "f";
    s.samples = {{1000, 3.0}, {2000, 4.0}};
    json::Json j = serializeSeries(s);
    EXPECT_EQ(j.getInt("id", 0), 2);
    EXPECT_EQ(j.get("points")->size(), 2u);
    EXPECT_DOUBLE_EQ(j.get("points")->at(1).getNumber("v", 0), 4.0);
}

// ---------------------------------------------------------------------
// Monitor facade basics (no HTTP; see rtm_http_test.cc)
// ---------------------------------------------------------------------

TEST(MonitorFacade, TrackValueByFieldAndBufferMetric)
{
    sim::SerialEngine eng;
    Dummy d(&eng, "GPU[0].X");
    MonitorConfig cfg;
    cfg.announceUrl = false;
    Monitor mon(cfg);
    mon.registerEngine(&eng);
    mon.registerComponent(&d);

    EXPECT_GT(mon.trackValue("GPU[0].X", "level"), 0u);
    EXPECT_GT(mon.trackValue("GPU[0].X", "TopPort.Buf.size"), 0u);
    EXPECT_EQ(mon.trackValue("GPU[0].X", "no_such_field"), 0u);
    EXPECT_EQ(mon.trackValue("NoSuchComponent", "level"), 0u);

    d.level = 5;
    d.port->buf().push(sim::makeMsg<sim::Msg>());
    mon.sampleNow();
    auto series = mon.allValueSeries();
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0].samples.back().value, 5.0);
    EXPECT_EQ(series[1].samples.back().value, 1.0);
}

TEST(MonitorFacade, TickComponentWakesIt)
{
    sim::SerialEngine eng;

    class Sleeper : public sim::TickingComponent
    {
      public:
        explicit Sleeper(sim::Engine *e)
            : TickingComponent(e, "Sleeper", sim::Freq::ghz(1))
        {
        }

        bool
        tick() override
        {
            ticks++;
            return false;
        }

        int ticks = 0;
    } sleeper(&eng);

    MonitorConfig cfg;
    cfg.announceUrl = false;
    Monitor mon(cfg);
    mon.registerEngine(&eng);
    mon.registerComponent(&sleeper);

    EXPECT_TRUE(mon.tickComponent("Sleeper"));
    EXPECT_FALSE(mon.tickComponent("Ghost"));

    // The wake scheduled a tick event; run it (drain mode for a
    // single-threaded test).
    eng.setWaitWhenEmpty(false);
    eng.run();
    EXPECT_EQ(sleeper.ticks, 1);
}
