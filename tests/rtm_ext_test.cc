/**
 * @file
 * Tests for the RTM extension views: port throughput, the topology
 * map, and CSV export — plus their HTTP endpoints.
 */

#include <gtest/gtest.h>

#include <thread>

#include "gpu/platform.hh"
#include "json/json.hh"
#include "rtm/monitor.hh"
#include "web/client.hh"
#include "workloads/workloads.hh"

using namespace akita;
using akita::json::Json;

namespace
{

struct Rig
{
    gpu::Platform plat;
    rtm::Monitor mon;

    Rig() : Rig(config()) {}

    explicit Rig(const rtm::MonitorConfig &cfg)
        : plat(gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny())),
          mon(cfg)
    {
        mon.registerEngine(&plat.engine());
        for (auto *c : plat.components())
            mon.registerComponent(c);
        for (auto *conn : plat.connections())
            mon.registerConnection(conn);
        plat.driver().setProgressListener(&mon);
    }

    static rtm::MonitorConfig
    config()
    {
        rtm::MonitorConfig cfg;
        cfg.announceUrl = false;
        return cfg;
    }

    void
    runKernel()
    {
        workloads::MemCopyParams p;
        p.bytes = 1 << 20;
        kernel = workloads::makeMemCopy(p);
        plat.launchKernel(&kernel);
        ASSERT_EQ(plat.run(), gpu::Platform::RunStatus::Completed);
    }

    gpu::KernelDescriptor kernel;
};

} // namespace

TEST(Throughput, TotalsAndRates)
{
    Rig rig;

    // Before any traffic: totals zero, rates zero.
    auto before = rig.mon.portThroughput("GPU[0].SA[0].CU[0]");
    ASSERT_EQ(before.size(), 2u); // CtrlPort + MemPort.
    for (const auto &t : before) {
        EXPECT_EQ(t.totalSent, 0u);
        EXPECT_EQ(t.sendRateSimPerSec, 0.0);
    }

    rig.runKernel();

    auto after = rig.mon.portThroughput("GPU[0].SA[0].CU[0]");
    bool memPortActive = false;
    for (const auto &t : after) {
        if (t.port == "GPU[0].SA[0].CU[0].MemPort") {
            memPortActive = t.totalSent > 0 && t.totalSentBytes > 0 &&
                            t.totalReceived > 0;
            // Virtual time advanced since the first query: a rate must
            // be reported.
            EXPECT_GT(t.sendRateSimPerSec, 0.0);
        }
    }
    EXPECT_TRUE(memPortActive);
}

TEST(Throughput, TwoClientsIndependentCursors)
{
    Rig rig;
    const std::string comp = "GPU[0].SA[0].CU[0]";

    // Both clients establish baselines before any traffic.
    rig.mon.portThroughput(comp, "a");
    rig.mon.portThroughput(comp, "b");

    rig.runKernel();

    // A drains its delta twice; B's cursor must stay untouched.
    auto a1 = rig.mon.portThroughput(comp, "a");
    auto a2 = rig.mon.portThroughput(comp, "a");
    auto b1 = rig.mon.portThroughput(comp, "b");

    double aRate = 0, bRate = 0;
    for (const auto &t : a1)
        aRate += t.sendRateSimPerSec;
    for (const auto &t : b1)
        bRate += t.sendRateSimPerSec;
    EXPECT_GT(aRate, 0.0);
    // The shared-cursor bug zeroed B's first post-run rate because A's
    // queries consumed the delta; per-client cursors keep them equal.
    EXPECT_DOUBLE_EQ(bRate, aRate);
    for (const auto &t : a2)
        EXPECT_EQ(t.sendRateSimPerSec, 0.0)
            << "no virtual time elapsed between A's queries";
    // Totals are absolute and identical for every observer.
    for (std::size_t i = 0; i < a1.size(); i++)
        EXPECT_EQ(a1[i].totalSent, b1[i].totalSent);
}

TEST(Throughput, ClientCursorLruEviction)
{
    Rig rig;
    rig.runKernel();
    const std::string comp = "GPU[0].SA[0].CU[0]";

    rtm::ThroughputTracker tracker(&rig.mon.registry());
    // More clients than the cursor table retains: the oldest fall off
    // but the table never grows unbounded.
    for (int i = 0; i < 300; i++)
        tracker.sample(comp, rig.plat.engine().now(),
                       "client-" + std::to_string(i));
    EXPECT_LE(tracker.numClients(), 256u);
}

TEST(ValueMonitor, HistoryCapConfigurable)
{
    rtm::MonitorConfig cfg;
    cfg.announceUrl = false;
    cfg.autoSample = false;
    cfg.valueHistoryCap = 4;
    Rig rig(cfg);

    auto id = rig.mon.trackValue("GPU[0].RDMA", "transactions");
    ASSERT_GT(id, 0u);
    for (int i = 0; i < 10; i++)
        rig.mon.sampleNow();

    // The dashboard ring honours the configured cap...
    auto s = rig.mon.valueSeries(id);
    EXPECT_EQ(s.samples.size(), 4u);

    // ...while the metrics store retains the full raw history beyond
    // the cap (no 300-point cliff).
    auto series = rig.mon.metrics().query(
        "akita_tracked_value", {{"component", "GPU[0].RDMA"}}, 0,
        std::numeric_limits<std::int64_t>::max(), 1);
    ASSERT_EQ(series.size(), 1u);
    EXPECT_GE(series[0].points.size(), 10u);
}

TEST(Throughput, UnknownComponentEmpty)
{
    Rig rig;
    EXPECT_TRUE(rig.mon.portThroughput("Ghost").empty());
}

TEST(Topology, ListsConnectionsAndPorts)
{
    Rig rig;
    Json topo = rig.mon.topology();
    ASSERT_GT(topo.size(), 4u); // Driver conn + network + per-GPU fabrics.

    bool sawNetwork = false, sawSaConn = false;
    for (const auto &entry : topo.items()) {
        std::string name = entry.getStr("connection");
        const Json *ports = entry.get("ports");
        ASSERT_NE(ports, nullptr);
        EXPECT_GT(ports->size(), 0u) << name;
        if (name == "Network") {
            sawNetwork = true;
            // All four RDMA outside ports attach to the network.
            EXPECT_EQ(ports->size(), 4u);
        }
        if (name == "GPU[0].SA[0].Conn")
            sawSaConn = true;
    }
    EXPECT_TRUE(sawNetwork);
    EXPECT_TRUE(sawSaConn);
}

TEST(CsvExport, SeriesRoundTrip)
{
    Rig rig;
    auto id = rig.mon.trackValue("GPU[0].RDMA", "transactions");
    ASSERT_GT(id, 0u);
    rig.mon.sampleNow();
    rig.runKernel();
    rig.mon.sampleNow();

    std::string csv = rig.mon.exportSeriesCsv(id);
    ASSERT_FALSE(csv.empty());
    EXPECT_EQ(csv.rfind("t_ps,GPU[0].RDMA.transactions\n", 0), 0u);
    // Header + at least two sample rows.
    EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 3);

    EXPECT_TRUE(rig.mon.exportSeriesCsv(999).empty());
}

TEST(ExtensionEndpoints, OverHttp)
{
    Rig rig;
    ASSERT_TRUE(rig.mon.startServer());
    web::HttpClient client("127.0.0.1", rig.mon.serverPort());

    rig.runKernel();

    auto topo = client.get("/api/topology");
    ASSERT_TRUE(topo.has_value());
    EXPECT_EQ(topo->status, 200);
    EXPECT_GT(Json::parse(topo->body).size(), 0u);

    auto thr = client.get(
        "/api/throughput?component=GPU%5B0%5D.SA%5B0%5D.CU%5B0%5D");
    ASSERT_TRUE(thr.has_value());
    ASSERT_EQ(thr->status, 200);
    Json ports = Json::parse(thr->body);
    ASSERT_GT(ports.size(), 0u);
    EXPECT_GT(ports.at(1).getInt("total_sent", 0), 0);

    auto missing = client.get("/api/throughput?component=Ghost");
    EXPECT_EQ(missing->status, 404);

    auto track = client.post(
        "/api/monitor/track?component=Driver&field=kernels_completed",
        "");
    ASSERT_EQ(track->status, 200);
    std::int64_t id = Json::parse(track->body).getInt("id", 0);
    rig.mon.sampleNow();

    auto csv = client.get("/api/monitor/export?id=" + std::to_string(id));
    ASSERT_TRUE(csv.has_value());
    EXPECT_EQ(csv->status, 200);
    EXPECT_EQ(csv->body.rfind("t_ps,", 0), 0u);

    auto badCsv = client.get("/api/monitor/export?id=999");
    EXPECT_EQ(badCsv->status, 404);

    rig.mon.stopServer();
}
