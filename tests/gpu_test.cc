/**
 * @file
 * Tests for the GPU model: compute units, command processor, driver,
 * and the fully wired platform.
 */

#include <gtest/gtest.h>

#include "gpu/platform.hh"
#include "workloads/workloads.hh"

using namespace akita;
using namespace akita::gpu;

namespace
{

/** A trivial kernel: each wavefront does compute then one load. */
KernelDescriptor
simpleKernel(std::uint32_t wgs, std::uint32_t wfPerWg = 2)
{
    KernelDescriptor k;
    k.name = "simple";
    k.numWorkGroups = wgs;
    k.wavefrontsPerWG = wfPerWg;
    k.trace = [](std::uint32_t wg, std::uint32_t wf) {
        std::vector<WfOp> ops;
        ops.push_back(WfOp::compute(3));
        ops.push_back(WfOp::load(0x10000ull + (wg * 8 + wf) * 64, 64));
        ops.push_back(WfOp::store(0x40000000ull + (wg * 8 + wf) * 64, 64));
        return ops;
    };
    return k;
}

} // namespace

TEST(PlatformTest, SingleGpuCompletesKernel)
{
    PlatformConfig cfg;
    cfg.numGpus = 1;
    cfg.gpu = GpuConfig::tiny();
    Platform plat(cfg);
    KernelDescriptor k = simpleKernel(16);
    plat.launchKernel(&k);
    EXPECT_EQ(plat.run(), Platform::RunStatus::Completed);
    EXPECT_EQ(plat.driver().kernelsCompleted(), 1u);
    EXPECT_GT(plat.engine().now(), 0u);
}

TEST(PlatformTest, WorkSpreadAcrossComputeUnits)
{
    PlatformConfig cfg;
    cfg.numGpus = 1;
    cfg.gpu = GpuConfig::tiny();
    Platform plat(cfg);
    KernelDescriptor k = simpleKernel(64);
    plat.launchKernel(&k);
    plat.run();

    std::uint64_t total = 0;
    int cusUsed = 0;
    for (auto *cu : plat.gpus()[0].cus) {
        total += cu->completedWGs();
        if (cu->completedWGs() > 0)
            cusUsed++;
    }
    EXPECT_EQ(total, 64u);
    EXPECT_EQ(cusUsed, 4) << "round-robin should use every CU";
}

TEST(PlatformTest, McmSplitsAcrossChiplets)
{
    PlatformConfig cfg = PlatformConfig::mcm4(GpuConfig::tiny());
    Platform plat(cfg);
    KernelDescriptor k = simpleKernel(40);
    plat.launchKernel(&k);
    EXPECT_EQ(plat.run(), Platform::RunStatus::Completed);

    for (auto &chip : plat.gpus()) {
        std::uint64_t chipWGs = 0;
        for (auto *cu : chip.cus)
            chipWGs += cu->completedWGs();
        EXPECT_EQ(chipWGs, 10u) << chip.name;
    }
}

TEST(PlatformTest, RemoteTrafficFlowsThroughRdma)
{
    PlatformConfig cfg = PlatformConfig::mcm4(GpuConfig::tiny());
    Platform plat(cfg);
    // Addresses spread across pages: ~3/4 of accesses are remote.
    KernelDescriptor k;
    k.name = "scatter";
    k.numWorkGroups = 32;
    k.wavefrontsPerWG = 2;
    k.trace = [](std::uint32_t wg, std::uint32_t wf) {
        std::vector<WfOp> ops;
        for (int i = 0; i < 8; i++) {
            ops.push_back(WfOp::load(
                0x100000ull +
                    (static_cast<std::uint64_t>(wg * 16 + wf * 8 + i)) *
                        4096,
                64));
        }
        return ops;
    };
    plat.launchKernel(&k);
    EXPECT_EQ(plat.run(), Platform::RunStatus::Completed);

    std::uint64_t forwarded = 0;
    for (auto &chip : plat.gpus()) {
        forwarded += chip.rdma->fields()
                         .find("forwarded_out")
                         ->getter()
                         .intVal();
    }
    EXPECT_GT(forwarded, 0u);
    EXPECT_GT(plat.network().totalBytes(), 0u);
}

TEST(PlatformTest, SequentialKernels)
{
    PlatformConfig cfg;
    cfg.numGpus = 1;
    cfg.gpu = GpuConfig::tiny();
    Platform plat(cfg);
    KernelDescriptor k1 = simpleKernel(8);
    KernelDescriptor k2 = simpleKernel(8);
    KernelDescriptor k3 = simpleKernel(8);
    plat.launchKernel(&k1);
    plat.launchKernel(&k2);
    plat.launchKernel(&k3);
    EXPECT_EQ(plat.run(), Platform::RunStatus::Completed);
    EXPECT_EQ(plat.driver().kernelsCompleted(), 3u);
}

TEST(PlatformTest, LaunchAfterRunContinues)
{
    PlatformConfig cfg;
    cfg.numGpus = 1;
    cfg.gpu = GpuConfig::tiny();
    Platform plat(cfg);
    KernelDescriptor k = simpleKernel(4);
    plat.launchKernel(&k);
    plat.run();
    sim::VTime t1 = plat.engine().now();

    KernelDescriptor k2 = simpleKernel(4);
    plat.launchKernel(&k2);
    EXPECT_EQ(plat.run(), Platform::RunStatus::Completed);
    EXPECT_GT(plat.engine().now(), t1);
    EXPECT_EQ(plat.driver().kernelsCompleted(), 2u);
}

TEST(PlatformTest, EmptyKernelCompletesImmediately)
{
    PlatformConfig cfg;
    cfg.numGpus = 1;
    cfg.gpu = GpuConfig::tiny();
    Platform plat(cfg);
    KernelDescriptor k;
    k.name = "empty";
    k.numWorkGroups = 0;
    plat.launchKernel(&k);
    EXPECT_EQ(plat.run(), Platform::RunStatus::Completed);
}

TEST(PlatformTest, LegacyL2BugHangsPlatform)
{
    PlatformConfig cfg = PlatformConfig::mcm4(GpuConfig::tiny());
    cfg.legacyL2Deadlock = true;
    // Tighten the L2 queues so the historic deadlock triggers quickly.
    cfg.gpu.l2.numSets = 1;
    cfg.gpu.l2.ways = 4;
    cfg.gpu.l2.wbInCapacity = 2;
    cfg.gpu.l2.installCapacity = 2;
    cfg.gpu.l2.wbFetchedCapacity = 2;
    cfg.gpu.l2.dramWriteInflightMax = 1;

    Platform plat(cfg);
    workloads::TransposeParams tp;
    tp.n = 256;
    auto k = workloads::makeTranspose(tp);
    plat.launchKernel(&k);
    EXPECT_EQ(plat.run(), Platform::RunStatus::Hung);

    // The hang's visible signature: buffer residue somewhere.
    std::size_t residue = 0;
    for (auto *c : plat.components()) {
        for (auto *b : c->buffers())
            residue += b->size();
    }
    EXPECT_GT(residue, 0u);
}

TEST(PlatformTest, ProgressListenerReceivesLifecycle)
{
    class Listener : public KernelProgressListener
    {
      public:
        void
        kernelStarted(std::uint64_t, const std::string &name,
                      std::uint64_t total) override
        {
            startedName = name;
            startedTotal = total;
        }

        void
        kernelProgress(std::uint64_t, std::uint64_t completed,
                       std::uint64_t ongoing) override
        {
            lastCompleted = completed;
            maxOngoing = std::max(maxOngoing, ongoing);
            updates++;
        }

        void kernelFinished(std::uint64_t) override { finished++; }

        std::string startedName;
        std::uint64_t startedTotal = 0;
        std::uint64_t lastCompleted = 0;
        std::uint64_t maxOngoing = 0;
        int updates = 0;
        int finished = 0;
    };

    PlatformConfig cfg;
    cfg.numGpus = 1;
    cfg.gpu = GpuConfig::tiny();
    Platform plat(cfg);
    Listener listener;
    plat.driver().setProgressListener(&listener);

    KernelDescriptor k = simpleKernel(32);
    plat.launchKernel(&k);
    plat.run();

    EXPECT_EQ(listener.startedName, "simple");
    EXPECT_EQ(listener.startedTotal, 32u);
    EXPECT_EQ(listener.lastCompleted, 32u);
    EXPECT_GT(listener.updates, 1);
    EXPECT_GT(listener.maxOngoing, 0u);
    EXPECT_EQ(listener.finished, 1);
}

TEST(PlatformTest, DeterministicAcrossRuns)
{
    auto runOnce = []() {
        PlatformConfig cfg = PlatformConfig::mcm4(GpuConfig::tiny());
        Platform plat(cfg);
        KernelDescriptor k = simpleKernel(24);
        plat.launchKernel(&k);
        plat.run();
        return std::make_pair(plat.engine().now(),
                              plat.engine().eventCount());
    };
    auto a = runOnce();
    auto b = runOnce();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(PlatformTest, ComponentNamingMatchesPaperConvention)
{
    PlatformConfig cfg = PlatformConfig::mcm4(GpuConfig::tiny());
    Platform plat(cfg);

    std::set<std::string> names;
    for (auto *c : plat.components())
        names.insert(c->name());

    EXPECT_TRUE(names.count("Driver"));
    EXPECT_TRUE(names.count("GPU[1].SA[0].L1VROB[0]"));
    EXPECT_TRUE(names.count("GPU[3].SA[1].L1VAddrTrans[1]"));
    EXPECT_TRUE(names.count("GPU[0].SA[0].L1VCache[0]"));
    EXPECT_TRUE(names.count("GPU[2].RDMA"));
    EXPECT_TRUE(names.count("GPU[0].L2[0]"));
    EXPECT_TRUE(names.count("GPU[0].DRAM[1]"));

    // Buffer naming must match Fig. 3's strings.
    auto *rob = plat.gpus()[1].robs[0];
    EXPECT_EQ(rob->topPort()->buf().name(),
              "GPU[1].SA[0].L1VROB[0].TopPort.Buf");
}

TEST(GpuConfigTest, R9NanoShape)
{
    GpuConfig cfg = GpuConfig::r9nano();
    EXPECT_EQ(cfg.numSAs * cfg.cusPerSA, 64u); // 64 CUs.
    // 16 KB L1: sets * ways * 64 B.
    EXPECT_EQ(cfg.l1.numSets * cfg.l1.ways * 64, 16u * 1024u);
    // 2 MB L2 across banks.
    EXPECT_EQ(cfg.numL2Banks * cfg.l2.numSets * cfg.l2.ways * 64,
              2u * 1024u * 1024u);
}
