/**
 * @file
 * Unit tests for the JSON library: value model, parser, serializer,
 * round-trip properties, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "json/json.hh"

using akita::json::Json;
using akita::json::ParseError;

TEST(JsonValue, NullByDefault)
{
    Json j;
    EXPECT_TRUE(j.isNull());
    EXPECT_EQ(j.dump(), "null");
}

TEST(JsonValue, Booleans)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_TRUE(Json(true).boolVal());
}

TEST(JsonValue, Integers)
{
    EXPECT_EQ(Json(0).dump(), "0");
    EXPECT_EQ(Json(-17).dump(), "-17");
    EXPECT_EQ(Json(std::int64_t{1} << 62).dump(),
              std::to_string(std::int64_t{1} << 62));
}

TEST(JsonValue, Floats)
{
    Json j(1.5);
    EXPECT_TRUE(j.isFloat());
    EXPECT_DOUBLE_EQ(Json::parse(j.dump()).numberVal(), 1.5);
}

TEST(JsonValue, NanSerializesAsNull)
{
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(JsonValue, Strings)
{
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
}

TEST(JsonValue, ControlCharsEscaped)
{
    std::string s = "x";
    s.push_back('\x01');
    EXPECT_EQ(Json(s).dump(), "\"x\\u0001\"");
}

TEST(JsonObject, InsertionOrderPreserved)
{
    Json obj = Json::object();
    obj.set("zebra", 1);
    obj.set("alpha", 2);
    obj.set("mid", 3);
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(JsonObject, SetReplacesExisting)
{
    Json obj = Json::object();
    obj.set("k", 1);
    obj.set("k", 2);
    EXPECT_EQ(obj.size(), 1u);
    EXPECT_EQ(obj.getInt("k", 0), 2);
}

TEST(JsonObject, GettersWithDefaults)
{
    Json obj = Json::object();
    obj.set("i", 42);
    obj.set("s", "str");
    obj.set("b", true);
    obj.set("f", 2.5);
    EXPECT_EQ(obj.getInt("i", -1), 42);
    EXPECT_EQ(obj.getInt("missing", -1), -1);
    EXPECT_EQ(obj.getStr("s", "d"), "str");
    EXPECT_EQ(obj.getStr("missing", "d"), "d");
    EXPECT_TRUE(obj.getBool("b", false));
    EXPECT_DOUBLE_EQ(obj.getNumber("f", 0), 2.5);
    EXPECT_DOUBLE_EQ(obj.getNumber("i", 0), 42.0);
}

TEST(JsonArray, PushAndAt)
{
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    arr.push(Json::object());
    EXPECT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr.at(0).intVal(), 1);
    EXPECT_EQ(arr.at(1).strVal(), "two");
    EXPECT_TRUE(arr.at(2).isObject());
    EXPECT_THROW(arr.at(3), std::out_of_range);
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_TRUE(Json::parse("true").boolVal());
    EXPECT_FALSE(Json::parse("false").boolVal());
    EXPECT_EQ(Json::parse("123").intVal(), 123);
    EXPECT_EQ(Json::parse("-5").intVal(), -5);
    EXPECT_DOUBLE_EQ(Json::parse("1e3").numberVal(), 1000.0);
    EXPECT_DOUBLE_EQ(Json::parse("-2.5E-1").numberVal(), -0.25);
    EXPECT_EQ(Json::parse("\"abc\"").strVal(), "abc");
}

TEST(JsonParse, Whitespace)
{
    Json j = Json::parse("  {\n\t\"a\" : [ 1 , 2 ] }\r\n");
    EXPECT_EQ(j.get("a")->size(), 2u);
}

TEST(JsonParse, NestedStructures)
{
    Json j = Json::parse(R"({"a":{"b":[{"c":1},{"c":2}]},"d":null})");
    ASSERT_NE(j.get("a"), nullptr);
    const Json *b = j.get("a")->get("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->at(1).getInt("c", 0), 2);
    EXPECT_TRUE(j.get("d")->isNull());
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(Json::parse(R"("a\nb")").strVal(), "a\nb");
    EXPECT_EQ(Json::parse(R"("q\"q")").strVal(), "q\"q");
    EXPECT_EQ(Json::parse(R"("A")").strVal(), "A");
    EXPECT_EQ(Json::parse(R"("é")").strVal(), "\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(Json::parse(R"("😀")").strVal(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParse, IntOverflowFallsBackToDouble)
{
    Json j = Json::parse("99999999999999999999999999");
    EXPECT_TRUE(j.isFloat());
    EXPECT_GT(j.numberVal(), 9e25);
}

struct BadInput
{
    const char *text;
    const char *why;
};

class JsonMalformed : public ::testing::TestWithParam<BadInput>
{
};

TEST_P(JsonMalformed, Rejected)
{
    EXPECT_THROW(Json::parse(GetParam().text), ParseError)
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonMalformed,
    ::testing::Values(
        BadInput{"", "empty input"},
        BadInput{"{", "unterminated object"},
        BadInput{"[1,2", "unterminated array"},
        BadInput{"[1,]", "trailing comma"},
        BadInput{"{\"a\":}", "missing value"},
        BadInput{"{\"a\" 1}", "missing colon"},
        BadInput{"{a:1}", "unquoted key"},
        BadInput{"\"abc", "unterminated string"},
        BadInput{"\"\\x\"", "bad escape"},
        BadInput{"\"\\u12g4\"", "bad unicode escape"},
        BadInput{"01", "leading zero then trailing digit"},
        BadInput{"1.", "no digit after decimal point"},
        BadInput{"1e", "no digit in exponent"},
        BadInput{"+1", "leading plus"},
        BadInput{"tru", "truncated literal"},
        BadInput{"nulll", "trailing garbage"},
        BadInput{"1 2", "two documents"},
        BadInput{"\"a\nb\"", "raw control char in string"}));

class JsonRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity)
{
    Json a = Json::parse(GetParam());
    Json b = Json::parse(a.dump());
    EXPECT_EQ(a, b) << GetParam();
    // Pretty-printing must also round-trip.
    Json c = Json::parse(a.dump(2));
    EXPECT_EQ(a, c);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "0", "-1", "3.25", "\"\"", "\"text\"", "[]",
        "{}", "[null,true,1,\"x\",[],{}]",
        R"({"a":1,"b":[2,3],"c":{"d":"e"},"f":null})",
        R"({"deep":[[[[[1]]]]]})",
        R"(["backslash and quote","\\","\""])",
        R"({"nums":[0.5,1e10,-3.125,1234567890123456789]})"));

TEST(JsonEquality, NumericCrossTypeComparison)
{
    EXPECT_EQ(Json(1), Json(1.0));
    EXPECT_NE(Json(1), Json(1.5));
    EXPECT_NE(Json(1), Json("1"));
}

TEST(JsonParse, DeepNestingRejected)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_THROW(Json::parse(deep), ParseError);
}

TEST(JsonDump, PrettyPrint)
{
    Json obj = Json::object();
    obj.set("a", 1);
    std::string pretty = obj.dump(2);
    EXPECT_NE(pretty.find("\n"), std::string::npos);
    EXPECT_NE(pretty.find("  \"a\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Streaming writer (the serving fast path)
// ---------------------------------------------------------------------

#include <limits>

#include "json/writer.hh"

namespace
{

/** Re-emits a parsed tree through the Writer API. */
void
writeFromTree(akita::json::Writer &w, const Json &j)
{
    switch (j.type()) {
      case Json::Type::Null:
        w.value(nullptr);
        break;
      case Json::Type::Bool:
        w.value(j.boolVal());
        break;
      case Json::Type::Int:
        w.value(j.intVal());
        break;
      case Json::Type::Float:
        w.value(j.numberVal());
        break;
      case Json::Type::Str:
        w.value(j.strVal());
        break;
      case Json::Type::Array:
        w.beginArray();
        for (const auto &item : j.items())
            writeFromTree(w, item);
        w.endArray();
        break;
      case Json::Type::Object:
        w.beginObject();
        for (const auto &m : j.members()) {
            w.key(m.first);
            writeFromTree(w, m.second);
        }
        w.endObject();
        break;
    }
}

} // namespace

class WriterEquivalence : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WriterEquivalence, MatchesDumpByteForByte)
{
    Json tree = Json::parse(GetParam());
    std::string streamed;
    akita::json::Writer w(streamed);
    writeFromTree(w, tree);
    EXPECT_EQ(streamed, tree.dump()) << GetParam();
}

// Same corpus as JsonRoundTrip: the two serializers must agree on
// every construct the API emits (the response cache ETags depend on
// byte-stable output regardless of which path built the body).
INSTANTIATE_TEST_SUITE_P(
    Corpus, WriterEquivalence,
    ::testing::Values(
        "null", "true", "0", "-1", "3.25", "\"\"", "\"text\"", "[]",
        "{}", "[null,true,1,\"x\",[],{}]",
        R"({"a":1,"b":[2,3],"c":{"d":"e"},"f":null})",
        R"({"deep":[[[[[1]]]]]})",
        R"(["backslash and quote","\\","\""])",
        R"({"nums":[0.5,1e10,-3.125,1234567890123456789]})",
        R"({"esc":"tab\tnl\nquote\"backslash\\u\u0001"})"));

TEST(Writer, FieldAndChaining)
{
    std::string out;
    akita::json::Writer w(out);
    w.beginObject();
    w.field("i", 42).field("s", "x").field("b", true);
    w.key("arr").beginArray();
    w.value(1).value(2.5).value(nullptr);
    w.endArray();
    w.endObject();
    EXPECT_EQ(out, R"({"i":42,"s":"x","b":true,"arr":[1,2.5,null]})");
}

TEST(Writer, NonFiniteBecomesNull)
{
    std::string out;
    akita::json::Writer w(out);
    w.beginArray();
    w.value(std::nan(""));
    w.value(std::numeric_limits<double>::infinity());
    w.endArray();
    EXPECT_EQ(out, "[null,null]");
}

TEST(Writer, Uint64MatchesJsonCtor)
{
    // Json(uint64) stores int64; the writer must agree so mixed
    // tree/stream paths produce identical cache keys.
    std::uint64_t big = 0xFFFFFFFFFFFFFFFFull;
    std::string out;
    akita::json::Writer w(out);
    w.value(big);
    EXPECT_EQ(out, Json(big).dump());
}

TEST(Writer, AppendsWithoutClearing)
{
    std::string out = "data: ";
    akita::json::Writer w(out);
    w.beginObject();
    w.field("v", 1);
    w.endObject();
    EXPECT_EQ(out, "data: {\"v\":1}");
}
