/**
 * @file
 * Tests for the benchmark workload generators: shape, determinism, and
 * end-to-end execution of every paper benchmark on a small platform.
 */

#include <gtest/gtest.h>

#include "gpu/platform.hh"
#include "workloads/workloads.hh"

using namespace akita;
using namespace akita::workloads;

namespace
{

/** Aggregate statistics over a kernel's full trace. */
struct TraceStats
{
    std::uint64_t memOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t bytes = 0;
    std::uint64_t computeCycles = 0;
};

TraceStats
scan(const gpu::KernelDescriptor &k, std::uint32_t max_wgs = 0)
{
    TraceStats s;
    std::uint32_t wgs = k.numWorkGroups;
    if (max_wgs != 0 && wgs > max_wgs)
        wgs = max_wgs;
    for (std::uint32_t wg = 0; wg < wgs; wg++) {
        for (std::uint32_t wf = 0; wf < k.wavefrontsPerWG; wf++) {
            for (const auto &op : k.trace(wg, wf)) {
                s.computeCycles += op.computeCycles;
                if (!op.hasMem())
                    continue;
                s.memOps++;
                s.bytes += op.size;
                if (op.isWrite)
                    s.stores++;
                else
                    s.loads++;
            }
        }
    }
    return s;
}

} // namespace

TEST(Workloads, FirShape)
{
    FirParams p;
    p.numSamples = 1 << 14;
    auto k = makeFir(p);
    EXPECT_EQ(k.name, "fir");
    EXPECT_GT(k.numWorkGroups, 0u);
    TraceStats s = scan(k);
    EXPECT_GT(s.loads, s.stores) << "FIR reads taps + window per output";
    EXPECT_GT(s.computeCycles, 0u);
}

TEST(Workloads, Im2ColPaperDefaults)
{
    Im2ColParams p; // Paper: 24x24, 6 channels, batch 640.
    auto k = makeIm2Col(p);
    EXPECT_EQ(k.numWorkGroups, 640u * 6u)
        << "one WG per (image, channel)";
    TraceStats s = scan(k, 8);
    // im2col replicates each pixel K*K times: stores dominate bytes.
    EXPECT_GT(s.stores, 0u);
    EXPECT_GT(s.loads, 0u);
}

TEST(Workloads, TransposeStridedWrites)
{
    TransposeParams p;
    p.n = 256;
    auto k = makeTranspose(p);
    TraceStats s = scan(k, 4);
    EXPECT_GT(s.stores, s.loads)
        << "column-major writes are split into strided chunks";
}

TEST(Workloads, KMeansStreamsPoints)
{
    KMeansParams p;
    p.numPoints = 1 << 12;
    auto k = makeKMeans(p);
    TraceStats s = scan(k, 4);
    EXPECT_GT(s.loads, 2 * s.stores);
}

TEST(Workloads, AesBalancedIo)
{
    AesParams p;
    p.dataBytes = 1 << 18;
    auto k = makeAes(p);
    TraceStats s = scan(k, 4);
    EXPECT_GT(s.loads, 0u);
    EXPECT_GT(s.stores, 0u);
}

TEST(Workloads, BitonicMultiPass)
{
    BitonicParams p;
    p.numElems = 1 << 12;
    p.passes = 3;
    auto k = makeBitonic(p);
    TraceStats one = scan(k, 1);
    p.passes = 6;
    TraceStats two = scan(makeBitonic(p), 1);
    EXPECT_EQ(two.memOps, 2 * one.memOps)
        << "ops scale linearly with passes";
}

TEST(Workloads, MemCopyByteConservation)
{
    MemCopyParams p;
    p.bytes = 1 << 20;
    auto k = makeMemCopy(p);
    TraceStats s = scan(k);
    EXPECT_EQ(s.loads, s.stores);
    EXPECT_EQ(s.bytes, 2ull * p.bytes) << "every byte read and written";
}

TEST(Workloads, TracesAreDeterministic)
{
    auto k = makeFir(FirParams{});
    auto a = k.trace(3, 1);
    auto b = k.trace(3, 1);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].size, b[i].size);
        EXPECT_EQ(a[i].isWrite, b[i].isWrite);
        EXPECT_EQ(a[i].computeCycles, b[i].computeCycles);
    }
}

TEST(Workloads, PaperSuiteHasSixBenchmarks)
{
    auto suite = paperSuite(0.05);
    ASSERT_EQ(suite.size(), 6u);
    std::set<std::string> names;
    for (const auto &b : suite)
        names.insert(b.name);
    EXPECT_TRUE(names.count("FIR"));
    EXPECT_TRUE(names.count("im2col"));
    EXPECT_TRUE(names.count("KMeans"));
    EXPECT_TRUE(names.count("MatrixTranspose"));
    EXPECT_TRUE(names.count("AES"));
    EXPECT_TRUE(names.count("BitonicSort"));
}

TEST(Workloads, ScaleShrinksWork)
{
    auto small = paperSuite(0.02);
    auto large = paperSuite(0.5);
    for (std::size_t i = 0; i < small.size(); i++) {
        EXPECT_LE(small[i].kernel.numWorkGroups,
                  large[i].kernel.numWorkGroups)
            << small[i].name;
    }
}

// End-to-end: every paper benchmark completes on the tiny MCM platform.
class WorkloadEndToEnd
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(WorkloadEndToEnd, CompletesOnMcm4)
{
    auto suite = paperSuite(0.02);
    auto &bench = suite[GetParam()];

    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::Platform plat(cfg);
    plat.launchKernel(&bench.kernel);
    EXPECT_EQ(plat.run(), gpu::Platform::RunStatus::Completed)
        << bench.name;
    EXPECT_GT(plat.engine().now(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadEndToEnd,
                         ::testing::Range<std::size_t>(0, 6));
