/**
 * @file
 * Integration tests: a live monitored simulation queried over HTTP —
 * the full AkitaRTM stack end to end, including the case-study-2
 * debugging workflow (hang detection, buffer residue, per-component
 * tick) and the pause/resume determinism property.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "gpu/platform.hh"
#include "json/json.hh"
#include "rtm/monitor.hh"
#include "web/client.hh"
#include "workloads/workloads.hh"

using namespace akita;
using akita::json::Json;

namespace
{

gpu::KernelDescriptor
smallKernel(std::uint32_t wgs)
{
    gpu::KernelDescriptor k;
    k.name = "small";
    k.numWorkGroups = wgs;
    k.wavefrontsPerWG = 2;
    k.trace = [](std::uint32_t wg, std::uint32_t wf) {
        std::vector<gpu::WfOp> ops;
        for (int i = 0; i < 4; i++) {
            ops.push_back(gpu::WfOp::load(
                0x10000ull + (wg * 64 + wf * 16 + i) * 4096, 64, 2));
        }
        return ops;
    };
    return k;
}

/** Platform + monitor + server, sim running on a worker thread. */
struct LiveRig
{
    gpu::Platform plat;
    rtm::Monitor mon;
    std::thread simThread;

    explicit LiveRig(gpu::PlatformConfig cfg =
                         gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()),
                     rtm::MonitorConfig mcfg = quietConfig())
        : plat(withEngineEnv(std::move(cfg))), mon(mcfg)
    {
        mon.registerEngine(&plat.engine());
        for (auto *c : plat.components())
            mon.registerComponent(c);
        plat.driver().setProgressListener(&mon);
        EXPECT_TRUE(mon.startServer());
    }

    /** AKITA_ENGINE/AKITA_WORKERS select the engine (CI TSan job). */
    static gpu::PlatformConfig
    withEngineEnv(gpu::PlatformConfig cfg)
    {
        gpu::applyEngineEnv(cfg);
        return cfg;
    }

    static rtm::MonitorConfig
    quietConfig()
    {
        rtm::MonitorConfig cfg;
        cfg.announceUrl = false;
        cfg.sampleIntervalMs = 10;
        cfg.hangThresholdSec = 0.2;
        return cfg;
    }

    void
    runAsync()
    {
        simThread = std::thread([this]() { plat.run(); });
    }

    void
    join()
    {
        if (simThread.joinable())
            simThread.join();
    }

    ~LiveRig()
    {
        plat.engine().stop();
        join();
        mon.stopServer();
    }

    web::HttpClient
    client() const
    {
        return web::HttpClient("127.0.0.1", mon.serverPort());
    }
};

Json
getJson(const web::HttpClient &c, const std::string &target)
{
    auto r = c.get(target);
    EXPECT_TRUE(r.has_value()) << target;
    EXPECT_EQ(r->status, 200) << target << ": " << r->body;
    return Json::parse(r->body);
}

} // namespace

TEST(RtmHttp, StatusProgressAndCompletion)
{
    LiveRig rig;
    auto k = smallKernel(64);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();

    // Poll until completion; progress bars must reach 64/64.
    for (int i = 0; i < 500; i++) {
        Json bars = getJson(c, "/api/progress");
        if (bars.size() == 1 &&
            bars.at(0).getInt("completed", 0) == 64)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    rig.join();

    Json bars = getJson(c, "/api/progress");
    ASSERT_EQ(bars.size(), 1u);
    EXPECT_EQ(bars.at(0).getStr("label"), "kernel small");
    EXPECT_EQ(bars.at(0).getInt("completed", 0), 64);
    EXPECT_EQ(bars.at(0).getInt("not_started", -1), 0);

    Json status = getJson(c, "/api/status");
    EXPECT_GT(status.getInt("now_ps", 0), 0);
    EXPECT_GT(status.getInt("events", 0), 0);
}

TEST(RtmHttp, ComponentHierarchyAndSnapshot)
{
    LiveRig rig;
    auto c = rig.client();

    Json tree = getJson(c, "/api/components");
    ASSERT_NE(tree.get("children"), nullptr);
    // Root children include Driver, GPU[0..3], Network is not a
    // component (it is a connection), so expect 5 nodes.
    EXPECT_GE(tree.get("children")->size(), 5u);

    Json comp = getJson(
        c, "/api/component?name=GPU%5B0%5D.SA%5B0%5D.L1VCache%5B0%5D");
    EXPECT_EQ(comp.getStr("name"), "GPU[0].SA[0].L1VCache[0]");
    bool hasMshrCap = false;
    for (const auto &f : comp.get("fields")->items()) {
        if (f.getStr("name") == "mshr_capacity") {
            hasMshrCap = true;
            EXPECT_EQ(f.getInt("value", 0), 16);
        }
    }
    EXPECT_TRUE(hasMshrCap);

    auto missing = c.get("/api/component?name=Ghost");
    EXPECT_EQ(missing->status, 404);
    auto noName = c.get("/api/component");
    EXPECT_EQ(noName->status, 400);
}

TEST(RtmHttp, BufferAnalyzerDuringLoad)
{
    LiveRig rig;
    auto k = smallKernel(256);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();

    // While the simulation runs, the analyzer must report rows with the
    // Fig. 3 columns and honour sort/top parameters.
    Json rows = getJson(c, "/api/buffers?sort=percent&top=10");
    EXPECT_LE(rows.size(), 10u);
    if (rows.size() >= 2) {
        EXPECT_GE(rows.at(0).getNumber("percent", 0),
                  rows.at(1).getNumber("percent", 0));
    }
    rig.join();

    rows = getJson(c, "/api/buffers?sort=size&top=5");
    for (const auto &row : rows.items()) {
        EXPECT_FALSE(row.getStr("buffer").empty());
        EXPECT_GE(row.getInt("cap", 0), row.getInt("size", 0));
    }
}

TEST(RtmHttp, ValueMonitoringOverHttp)
{
    LiveRig rig;
    auto k = smallKernel(512);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();

    auto track = c.post(
        "/api/monitor/track?component=GPU%5B0%5D.RDMA&field=transactions",
        "");
    ASSERT_TRUE(track.has_value());
    ASSERT_EQ(track->status, 200) << track->body;
    std::int64_t id = Json::parse(track->body).getInt("id", 0);
    ASSERT_GT(id, 0);

    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Json series = getJson(c, "/api/monitor/series?id=" +
                                 std::to_string(id));
    EXPECT_EQ(series.getStr("component"), "GPU[0].RDMA");
    EXPECT_GE(series.get("points")->size(), 2u);

    auto untrack =
        c.post("/api/monitor/untrack?id=" + std::to_string(id), "");
    EXPECT_EQ(untrack->status, 200);
    auto gone = c.get("/api/monitor/series?id=" + std::to_string(id));
    EXPECT_EQ(gone->status, 404);

    rig.join();
}

TEST(RtmHttp, PauseFreezesVirtualTime)
{
    LiveRig rig;
    auto k = smallKernel(2048);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(c.post("/api/pause", "")->status, 200);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::int64_t t1 = getJson(c, "/api/status").getInt("now_ps", 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::int64_t t2 = getJson(c, "/api/status").getInt("now_ps", 0);
    EXPECT_EQ(t1, t2) << "virtual time advanced while paused";
    EXPECT_TRUE(getJson(c, "/api/status").getBool("paused", false));

    EXPECT_EQ(c.post("/api/resume", "")->status, 200);
    rig.join();
    std::int64_t t3 = getJson(c, "/api/status").getInt("now_ps", 0);
    EXPECT_GT(t3, t2);
}

TEST(RtmHttp, ProfilerEndpoints)
{
    LiveRig rig;
    auto k = smallKernel(256);
    rig.plat.launchKernel(&k);
    auto c = rig.client();

    EXPECT_EQ(c.post("/api/profile/start", "")->status, 200);
    rig.runAsync();
    rig.join();

    Json prof = getJson(c, "/api/profile?top=10");
    EXPECT_TRUE(prof.getBool("enabled", false));
    ASSERT_GT(prof.get("functions")->size(), 0u);
    // Tick handlers of simulated components must appear.
    bool sawTick = false;
    for (const auto &f : prof.get("functions")->items()) {
        if (f.getStr("name").find("::tick") != std::string::npos)
            sawTick = true;
        EXPECT_GE(f.getInt("total_ns", 0), f.getInt("self_ns", 0));
    }
    EXPECT_TRUE(sawTick);
    EXPECT_EQ(c.post("/api/profile/stop", "")->status, 200);
}

TEST(RtmHttp, DashboardServed)
{
    LiveRig rig;
    auto c = rig.client();
    auto r = c.get("/");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 200);
    EXPECT_NE(r->body.find("AkitaRTM"), std::string::npos);
    // Mount-relative fetch targets (no leading slash): the same HTML
    // works at / and under a fleet-gateway /sim/<id>/ prefix.
    EXPECT_NE(r->body.find("get('api/status')"), std::string::npos);
    EXPECT_EQ(r->body.find("'/api/"), std::string::npos)
        << "absolute API URLs break gateway-mounted dashboards";
}

TEST(RtmHttp, CaseStudy2HangWorkflow)
{
    // The paper's second case study over the real API: the legacy L2
    // deadlock fires; the dashboard detects the hang; buffer residue
    // points at the L2; per-component Tick wakes components but cannot
    // resolve a true deadlock.
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.legacyL2Deadlock = true;
    cfg.gpu.l2.numSets = 1;
    cfg.gpu.l2.ways = 4;
    cfg.gpu.l2.wbInCapacity = 2;
    cfg.gpu.l2.installCapacity = 2;
    cfg.gpu.l2.wbFetchedCapacity = 2;
    cfg.gpu.l2.dramWriteInflightMax = 1;

    LiveRig rig(cfg);
    workloads::TransposeParams tp;
    tp.n = 128;
    auto k = workloads::makeTranspose(tp);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();

    // Wait for the hang signature: frozen time + drained queue.
    bool hangSeen = false;
    for (int i = 0; i < 600 && !hangSeen; i++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        Json st = getJson(c, "/api/status");
        hangSeen = st.get("hang")->getBool("hanging", false) &&
                   st.get("hang")->getBool("queue_drained", false);
    }
    ASSERT_TRUE(hangSeen) << "hang was not detected";

    // Bottleneck analyzer: non-empty buffers identify stuck components.
    Json rows = getJson(c, "/api/buffers?sort=size&top=50");
    bool l2Residue = false;
    for (const auto &row : rows.items()) {
        if (row.getInt("size", 0) > 0 &&
            row.getStr("buffer").find(".L2[") != std::string::npos)
            l2Residue = true;
    }
    EXPECT_TRUE(l2Residue) << "L2 buffers should hold residue";

    // The Tick button wakes a component; the engine revives briefly
    // but the deadlock persists (time stays frozen afterwards).
    std::int64_t tBefore = getJson(c, "/api/status").getInt("now_ps", 0);
    auto tick = c.post("/api/tick?component=GPU%5B0%5D.L2%5B0%5D", "");
    EXPECT_EQ(tick->status, 200);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::int64_t tAfter = getJson(c, "/api/status").getInt("now_ps", 0);
    EXPECT_GE(tAfter, tBefore);
    EXPECT_LE(tAfter - tBefore, 10000) << "a kicked deadlock must not "
                                          "make real progress";

    rig.plat.engine().stop();
    rig.join();
}

TEST(RtmHttp, PrometheusScrapeHasFamilies)
{
    LiveRig rig;
    auto k = smallKernel(256);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();

    // Let the sampler take a few passes while the workload runs.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    auto r = c.get("/metrics");
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->status, 200);

    // Count distinct instrument families from "# TYPE <name> <kind>".
    std::set<std::string> families;
    std::istringstream lines(r->body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("# TYPE ", 0) == 0) {
            auto sp = line.find(' ', 7);
            families.insert(line.substr(7, sp - 7));
        }
    }
    EXPECT_GE(families.size(), 10u) << r->body;
    for (const char *want :
         {"akita_engine_events_total", "akita_engine_virtual_time_seconds",
          "akita_port_sent_total", "akita_buffer_occupancy",
          "akita_cache_hits_total", "akita_dram_reads_total",
          "akita_rdma_forwarded_out_total", "akita_cu_completed_wgs_total",
          "akita_http_requests_total",
          "akita_metrics_sample_pass_seconds"}) {
        EXPECT_TRUE(families.count(want)) << "missing family " << want;
    }
    rig.join();
}

TEST(RtmHttp, MetricsQueryEndpoint)
{
    LiveRig rig;
    auto k = smallKernel(256);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();
    rig.join();
    // Workload done; force one more pass so the final totals land.
    rig.mon.metricsSamplePass();

    auto missing = c.get("/api/v1/metrics/query");
    EXPECT_EQ(missing->status, 400);

    Json list = getJson(c, "/api/v1/metrics");
    EXPECT_GE(list.size(), 10u);

    Json series = getJson(
        c, "/api/v1/metrics/query?name=akita_engine_events_total&step=1");
    ASSERT_EQ(series.size(), 1u);
    const Json *pts = series.at(0).get("points");
    ASSERT_NE(pts, nullptr);
    ASSERT_GE(pts->size(), 1u);
    // Cumulative event counter: non-decreasing across points, positive
    // at the end.
    double prev = -1;
    for (const auto &p : pts->items()) {
        double last = p.getNumber("last", -1);
        EXPECT_GE(last, prev);
        prev = last;
    }
    EXPECT_GT(prev, 0);

    // Label-filtered query: one CU's completed work-groups.
    Json cu = getJson(c,
                      "/api/v1/metrics/query?name=akita_cu_completed_wgs_"
                      "total&component=GPU%5B0%5D.SA%5B0%5D.CU%5B0%5D");
    ASSERT_EQ(cu.size(), 1u);
    EXPECT_EQ(cu.at(0).get("labels")->getStr("component"),
              "GPU[0].SA[0].CU[0]");
}

TEST(RtmHttp, MetricsStreamSse)
{
    LiveRig rig;
    auto k = smallKernel(128);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();

    // max_events=1 makes the stream close after one event so the
    // plain read-to-EOF client can consume it.
    auto r = c.get(
        "/api/v1/metrics/stream?name=akita_engine_events_total&"
        "max_events=1");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 200);
    auto at = r->body.find("data: ");
    ASSERT_NE(at, std::string::npos) << r->body;
    std::string payload = r->body.substr(at + 6);
    payload = payload.substr(0, payload.find('\n'));
    Json arr = Json::parse(payload);
    ASSERT_GE(arr.size(), 1u);
    EXPECT_EQ(arr.at(0).getStr("name"), "akita_engine_events_total");
    EXPECT_GE(arr.at(0).getNumber("value", -1), 0);
    rig.join();
}

TEST(RtmHttp, TwoThroughputClientsIndependentRates)
{
    LiveRig rig;
    auto k = smallKernel(128);
    rig.plat.launchKernel(&k);
    auto c = rig.client();
    const std::string q =
        "/api/throughput?component=GPU%5B0%5D.RDMA&client=";

    // Both clients take a baseline cursor before the run.
    Json a1 = getJson(c, q + "a");
    Json b1 = getJson(c, q + "b");
    ASSERT_GE(a1.size(), 1u);
    for (const auto &p : a1.items())
        EXPECT_EQ(p.getNumber("send_rate_sim_per_sec", -1), 0);

    rig.runAsync();
    rig.join();

    // Client A queries twice after completion; the second A query
    // consumes A's delta. B's cursor must be unaffected: its first
    // post-run query still sees the full run's worth of traffic.
    Json a2 = getJson(c, q + "a");
    Json a3 = getJson(c, q + "a");
    Json b2 = getJson(c, q + "b");

    double aRate = 0, bRate = 0;
    std::int64_t aTotal = 0, bTotal = 0;
    for (const auto &p : a2.items()) {
        aRate += p.getNumber("send_rate_sim_per_sec", 0);
        aTotal += p.getInt("total_sent", 0);
    }
    for (const auto &p : b2.items()) {
        bRate += p.getNumber("send_rate_sim_per_sec", 0);
        bTotal += p.getInt("total_sent", 0);
    }
    EXPECT_GT(aTotal, 0);
    EXPECT_EQ(aTotal, bTotal) << "totals are absolute, not per-client";
    EXPECT_GT(aRate, 0);
    // With the old shared cursor, A's second query (a3) would have
    // zeroed the delta so B's rate would read 0 here.
    EXPECT_DOUBLE_EQ(bRate, aRate)
        << "client B's rate was corrupted by client A's queries";
    // a3 itself sees no further virtual-time progress => zero rates.
    for (const auto &p : a3.items())
        EXPECT_EQ(p.getNumber("send_rate_sim_per_sec", -1), 0);
}

TEST(RtmHttp, MonitoredRunIsDeterministic)
{
    // Attaching the monitor (and polling it) must not change simulated
    // behavior: final virtual time equals an unmonitored run.
    sim::VTime unmonitored;
    {
        gpu::Platform plat(
            gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()));
        auto k = smallKernel(64);
        plat.launchKernel(&k);
        plat.run();
        unmonitored = plat.engine().now();
    }

    LiveRig rig;
    auto k = smallKernel(64);
    rig.plat.launchKernel(&k);
    rig.runAsync();
    auto c = rig.client();
    for (int i = 0; i < 50; i++) {
        c.get("/api/status");
        c.get("/api/buffers?sort=percent&top=10");
        c.get("/api/component?name=GPU%5B0%5D.RDMA");
    }
    rig.join();
    EXPECT_EQ(rig.plat.engine().now(), unmonitored);
}

// ---------------------------------------------------------------------
// Serving fast path over live HTTP: ETag/304, coalescing
// ---------------------------------------------------------------------

TEST(RtmHttp, EtagRoundTripYields304)
{
    LiveRig rig;
    web::PersistentClient client("127.0.0.1", rig.mon.serverPort());

    // First GET returns the body and an ETag.
    auto first = client.get("/api/components");
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->status, 200);
    ASSERT_TRUE(first->headers.count("etag"));
    std::string etag = first->headers.at("etag");
    EXPECT_FALSE(first->body.empty());

    // Replaying the ETag gets a body-less 304 on the same connection
    // (no component was registered in between, so the generation is
    // unchanged).
    auto second =
        client.get("/api/components", {{"If-None-Match", etag}});
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->status, 304);
    EXPECT_TRUE(second->body.empty());
    EXPECT_EQ(second->headers.at("etag"), etag);

    // A stale ETag gets the full body again.
    auto third = client.get("/api/components",
                            {{"If-None-Match", "\"deadbeef\""}});
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->status, 200);
    EXPECT_EQ(third->body, first->body);
}

TEST(RtmHttp, ConcurrentIdenticalGetsBuildOnce)
{
    LiveRig rig;
    // The component tree's generation is the registration count, which
    // is fixed here — so K simultaneous identical GETs must produce
    // exactly one serialization.
    constexpr int kClients = 8;
    std::vector<std::thread> threads;
    std::vector<std::string> bodies(kClients);
    for (int i = 0; i < kClients; i++) {
        threads.emplace_back([&, i]() {
            web::HttpClient c("127.0.0.1", rig.mon.serverPort());
            auto r = c.get("/api/components");
            if (r && r->status == 200)
                bodies[i] = r->body;
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(rig.mon.responseCache().buildCount(), 1u);
    for (int i = 0; i < kClients; i++) {
        EXPECT_FALSE(bodies[i].empty()) << "client " << i;
        EXPECT_EQ(bodies[i], bodies[0]);
    }
}

TEST(RtmHttp, NoCacheHeaderBypassesCache)
{
    LiveRig rig;
    web::PersistentClient client("127.0.0.1", rig.mon.serverPort());
    auto r = client.get("/api/components", {{"x-akita-no-cache", "1"}});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 200);
    EXPECT_FALSE(r->headers.count("etag"))
        << "bypassed responses are uncached and carry no validator";
    EXPECT_EQ(rig.mon.responseCache().buildCount(), 0u);
}

// ---------------------------------------------------------------------
// Content-coding negotiation and resumable SSE
// ---------------------------------------------------------------------

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "web/encoding.hh"

namespace
{

/** Monitor config with metrics passes under manual (test) control. */
rtm::MonitorConfig
manualMetricsConfig()
{
    rtm::MonitorConfig cfg = LiveRig::quietConfig();
    cfg.metricsIntervalMs = 3600 * 1000;
    return cfg;
}

/** All "id: N" values in an SSE byte stream, in order. */
std::vector<std::uint64_t>
sseIds(const std::string &stream)
{
    std::vector<std::uint64_t> ids;
    std::size_t at = 0;
    while ((at = stream.find("id: ", at)) != std::string::npos) {
        // Only count line-initial "id:" fields.
        if (at != 0 && stream[at - 1] != '\n') {
            at += 4;
            continue;
        }
        ids.push_back(std::strtoull(stream.c_str() + at + 4, nullptr, 10));
        at += 4;
    }
    return ids;
}

} // namespace

TEST(RtmHttp, GzipRoundTripIsByteIdentical)
{
    if (!web::encodingSupported())
        GTEST_SKIP() << "built without zlib";
    LiveRig rig(gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()),
                manualMetricsConfig());
    rig.mon.metricsSamplePass();
    web::PersistentClient client("127.0.0.1", rig.mon.serverPort());

    for (const char *target : {"/api/components", "/metrics"}) {
        auto plain = client.get(target);
        ASSERT_TRUE(plain.has_value()) << target;
        ASSERT_EQ(plain->status, 200);
        EXPECT_EQ(plain->headers.count("content-encoding"), 0u);

        auto gz = client.get(target, {{"Accept-Encoding", "gzip"}});
        ASSERT_TRUE(gz.has_value()) << target;
        ASSERT_EQ(gz->status, 200);
        ASSERT_EQ(gz->headers.at("content-encoding"), "gzip") << target;
        EXPECT_EQ(gz->headers.at("vary"), "Accept-Encoding");
        EXPECT_LT(gz->wireBodyBytes, plain->body.size()) << target;
        EXPECT_EQ(gz->body, plain->body)
            << target << ": gunzipped bytes differ from identity bytes";
    }

    // Compression ran once per (endpoint, generation, encoding): a
    // repeat gzip GET serves the stored variant.
    std::uint64_t encodes = rig.mon.responseCache().encodeCount();
    EXPECT_EQ(encodes, 2u) << "one per endpoint";
    auto again =
        client.get("/api/components", {{"Accept-Encoding", "gzip"}});
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(rig.mon.responseCache().encodeCount(), encodes);
}

TEST(RtmHttp, EtagVariesPerEncoding)
{
    if (!web::encodingSupported())
        GTEST_SKIP() << "built without zlib";
    LiveRig rig;
    web::PersistentClient client("127.0.0.1", rig.mon.serverPort());

    auto plain = client.get("/api/components");
    ASSERT_TRUE(plain.has_value());
    std::string etag = plain->headers.at("etag");

    auto gz =
        client.get("/api/components", {{"Accept-Encoding", "gzip"}});
    ASSERT_TRUE(gz.has_value());
    std::string gzEtag = gz->headers.at("etag");
    EXPECT_NE(gzEtag, etag) << "representations must not share an ETag";
    EXPECT_NE(gzEtag.find("-gzip"), std::string::npos);

    // The gzip validator matches only the gzip representation.
    auto cached = client.get("/api/components",
                             {{"Accept-Encoding", "gzip"},
                              {"If-None-Match", gzEtag}});
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(cached->status, 304);
    EXPECT_EQ(cached->headers.at("etag"), gzEtag);
    EXPECT_GE(rig.mon.responseCache().notModifiedCount(), 1u);

    auto mismatched =
        client.get("/api/components", {{"If-None-Match", gzEtag}});
    ASSERT_TRUE(mismatched.has_value());
    EXPECT_EQ(mismatched->status, 200)
        << "identity request with a gzip validator is a full response";
    EXPECT_EQ(mismatched->headers.at("etag"), etag);
}

TEST(RtmHttp, SseResumesFromLastEventId)
{
    LiveRig rig(gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()),
                manualMetricsConfig());
    auto c = rig.client();
    rig.mon.metricsSamplePass();
    rig.mon.metricsSamplePass();
    rig.mon.metricsSamplePass(); // version == 3

    // A fresh client gets the newest pass, tagged with its id.
    auto first = c.get(
        "/api/v1/metrics/stream?name=akita_engine_events_total&"
        "max_events=1");
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->status, 200);
    EXPECT_NE(first->body.find("retry: 2000"), std::string::npos);
    auto ids = sseIds(first->body);
    ASSERT_EQ(ids.size(), 1u) << first->body;
    EXPECT_EQ(ids[0], 3u);

    // Two passes happen while the client is away; resuming from id 3
    // replays exactly passes 4 and 5 — nothing lost, nothing repeated.
    rig.mon.metricsSamplePass();
    rig.mon.metricsSamplePass();
    auto resumed = c.get(
        "/api/v1/metrics/stream?name=akita_engine_events_total&"
        "max_events=2&last_event_id=3");
    ASSERT_TRUE(resumed.has_value());
    ASSERT_EQ(resumed->status, 200);
    auto ids2 = sseIds(resumed->body);
    ASSERT_EQ(ids2.size(), 2u) << resumed->body;
    EXPECT_EQ(ids2[0], 4u);
    EXPECT_EQ(ids2[1], 5u);
    // Each replayed event carries a data payload.
    std::size_t dataLines = 0;
    for (std::size_t at = 0;
         (at = resumed->body.find("data: ", at)) != std::string::npos;
         at += 6)
        dataLines++;
    EXPECT_EQ(dataLines, 2u);
}

TEST(RtmHttp, SseReconnectAfterSocketKillIsGapFree)
{
    LiveRig rig(gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()),
                manualMetricsConfig());
    rig.mon.metricsSamplePass();
    rig.mon.metricsSamplePass(); // version == 2

    // Open a raw streaming connection (no max_events: an unbounded
    // dashboard stream), read the first event, then kill the socket
    // mid-stream the way a dropped browser tab would.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(rig.mon.serverPort());
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *req =
        "GET /api/v1/metrics/stream?name=akita_engine_events_total "
        "HTTP/1.1\r\nHost: t\r\n\r\n";
    ASSERT_EQ(::send(fd, req, strlen(req), MSG_NOSIGNAL),
              static_cast<ssize_t>(strlen(req)));
    std::string got;
    char buf[2048];
    while (got.find("\ndata: ") == std::string::npos) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "stream ended before the first event";
        got.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd); // Abrupt client death.
    auto ids = sseIds(got);
    ASSERT_FALSE(ids.empty());
    std::uint64_t lastSeen = ids.back();
    EXPECT_EQ(lastSeen, 2u);

    // The samples that arrive while disconnected must all be replayed
    // on reconnect, in order, exactly once.
    rig.mon.metricsSamplePass();
    rig.mon.metricsSamplePass();
    rig.mon.metricsSamplePass(); // versions 3..5
    auto c = rig.client();
    auto resumed = c.get(
        "/api/v1/metrics/stream?name=akita_engine_events_total&"
        "max_events=3&last_event_id=" +
        std::to_string(lastSeen));
    ASSERT_TRUE(resumed.has_value());
    ASSERT_EQ(resumed->status, 200);
    auto ids2 = sseIds(resumed->body);
    ASSERT_EQ(ids2.size(), 3u) << resumed->body;
    for (std::size_t i = 0; i < ids2.size(); i++)
        EXPECT_EQ(ids2[i], lastSeen + 1 + i) << "gap or repeat at " << i;
}
