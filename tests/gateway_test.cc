/**
 * @file
 * Fleet gateway and serving-path parse-hardening tests: prefix-mounted
 * per-simulation routing (byte-identical to a standalone monitor
 * server), fleet aggregation endpoints, cache shard isolation, the
 * per-sim SSE delta stream, and the strict wire parsers (status line,
 * chunk sizes, Last-Event-ID) that keep a corrupt peer from wedging or
 * desynchronizing a client.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gpu/platform.hh"
#include "json/json.hh"
#include "rtm/gateway.hh"
#include "rtm/monitor.hh"
#include "rtm/respcache.hh"
#include "web/client.hh"
#include "web/http.hh"
#include "workloads/workloads.hh"

using namespace akita;
using akita::json::Json;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Connects a raw TCP socket to 127.0.0.1:port (asserts on failure). */
int
rawConnect(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)),
        0);
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

/** Sends @p request and reads until the server closes (or 5s). */
std::string
rawFetch(std::uint16_t port, const std::string &request)
{
    int fd = rawConnect(port);
    EXPECT_EQ(::send(fd, request.c_str(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));
    std::string got;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        got.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return got;
}

/** All line-initial "id: N" values in an SSE byte stream, in order. */
std::vector<std::uint64_t>
sseIds(const std::string &stream)
{
    std::vector<std::uint64_t> ids;
    std::size_t at = 0;
    while ((at = stream.find("id: ", at)) != std::string::npos) {
        if (at != 0 && stream[at - 1] != '\n') {
            at += 4;
            continue;
        }
        ids.push_back(
            std::strtoull(stream.c_str() + at + 4, nullptr, 10));
        at += 4;
    }
    return ids;
}

/** Occurrences of @p needle in @p hay. */
std::size_t
countOf(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = 0;
         (at = hay.find(needle, at)) != std::string::npos;
         at += needle.size())
        n++;
    return n;
}

/** A quiet N-sim fleet on a tiny platform (ephemeral gateway port). */
rtm::FleetConfig
quietFleet(std::size_t n)
{
    rtm::FleetConfig f;
    f.numSims = n;
    f.platform = gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::applyEngineEnv(f.platform); // AKITA_ENGINE (CI TSan job).
    f.monitor.announceUrl = false;
    f.monitor.sampleIntervalMs = 10;
    f.gateway.announceUrl = false;
    f.gateway.streamIntervalMs = 40;
    return f;
}

/** Runs a small FIR kernel on every fleet simulation and joins. */
void
runFleetWorkloads(rtm::Fleet &fleet)
{
    fleet.runAll([](std::size_t i, gpu::Platform &p) {
        workloads::FirParams fir;
        // Alternate two sizes so virtual-time finishing points differ
        // across the fleet (exercises slowest-sim aggregation).
        fir.numSamples = 1u << (9 + i % 2);
        gpu::KernelDescriptor k = workloads::makeFir(fir);
        p.launchKernel(&k);
        EXPECT_EQ(p.run(), gpu::Platform::RunStatus::Completed)
            << "sim " << i;
    });
}

Json
getJson(const web::HttpClient &c, const std::string &target)
{
    auto r = c.get(target);
    EXPECT_TRUE(r.has_value()) << target;
    EXPECT_EQ(r->status, 200) << target << ": " << r->body;
    return Json::parse(r->body);
}

} // namespace

// ---------------------------------------------------------------------
// Serving-path parse hardening
// ---------------------------------------------------------------------

TEST(ParseHardening, ResponseStatusLineMustBeThreeDigits)
{
    // Regression: the status line used to go through bare atoi(), so
    // "HTTP/1.1 abc OK" parsed as status 0 and "HTTP/1.1 99 X" leaked
    // out-of-range codes to callers.
    for (const char *bad : {
             "HTTP/1.1 abc OK\r\nContent-Length: 0\r\n\r\n",
             "HTTP/1.1 99 Low\r\nContent-Length: 0\r\n\r\n",
             "HTTP/1.1 600 High\r\nContent-Length: 0\r\n\r\n",
             "HTTP/1.1 20a OK\r\nContent-Length: 0\r\n\r\n",
             "HTTP/1.1  200 OK\r\nContent-Length: 0\r\n\r\n",
         }) {
        EXPECT_FALSE(web::parseResponse(bad).has_value()) << bad;
    }
    auto ok = web::parseResponse(
        "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->status, 200);
    auto edge = web::parseResponse(
        "HTTP/1.1 599 Weird\r\nContent-Length: 0\r\n\r\n");
    ASSERT_TRUE(edge.has_value());
    EXPECT_EQ(edge->status, 599);
}

TEST(ParseHardening, KeepAliveResponseDistinguishesInvalidFromShort)
{
    // The keep-alive parser must tell "wait for more bytes" apart from
    // "this connection can never resynchronize" — collapsing both to
    // nullopt made clients block on their 10s socket timeout instead
    // of aborting corrupt connections.
    std::size_t consumed = 0;
    web::ParseResult state = web::ParseResult::Ok;

    // Corrupt chunk-size line: Invalid, not Incomplete.
    EXPECT_FALSE(web::parseResponse(
                     "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
                     "\r\nzz\r\nhello\r\n0\r\n\r\n",
                     consumed, &state)
                     .has_value());
    EXPECT_EQ(state, web::ParseResult::Invalid);

    // Overflowing chunk size (17 hex digits): Invalid.
    EXPECT_FALSE(web::parseResponse(
                     "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
                     "\r\n1ffffffffffffffff\r\n",
                     consumed, &state)
                     .has_value());
    EXPECT_EQ(state, web::ParseResult::Invalid);

    // Truncated Content-Length body: Incomplete (keep reading).
    EXPECT_FALSE(web::parseResponse(
                     "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc",
                     consumed, &state)
                     .has_value());
    EXPECT_EQ(state, web::ParseResult::Incomplete);

    // Close-framed (no self-delimiting framing): Incomplete — EOF may
    // still complete it; only the EOF-reading client can finish it.
    EXPECT_FALSE(web::parseResponse(
                     "HTTP/1.1 200 OK\r\n\r\npartial body", consumed,
                     &state)
                     .has_value());
    EXPECT_EQ(state, web::ParseResult::Incomplete);

    // A well-formed chunked response still parses and consumes exactly
    // its own bytes.
    const std::string good =
        "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        "5\r\nhello\r\n0\r\n\r\n";
    auto resp = web::parseResponse(good + "HTTP/1.1 ...", consumed,
                                   &state);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->body, "hello");
    EXPECT_EQ(consumed, good.size());
}

TEST(ParseHardening, RequestChunkSizeRejectsGarbageAndOverflow)
{
    web::Request req;
    std::size_t consumed = 0;

    // Trailing garbage in the size line.
    EXPECT_EQ(web::parseRequest(
                  "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                  "\r\n12zz\r\nbody\r\n0\r\n\r\n",
                  req, consumed),
              web::ParseResult::Invalid);

    // 16+ hex digits can overflow a 64-bit size.
    EXPECT_EQ(web::parseRequest(
                  "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                  "\r\nffffffffffffffffff\r\n",
                  req, consumed),
              web::ParseResult::Invalid);

    // Sanity: a valid chunked request still de-chunks.
    EXPECT_EQ(web::parseRequest(
                  "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                  "\r\n5\r\nhello\r\n0\r\n\r\n",
                  req, consumed),
              web::ParseResult::Ok);
    EXPECT_EQ(req.body, "hello");
}

TEST(ParseHardening, CorruptChunkFramingAbortsConnectionFast)
{
    // A fake server that answers with corrupt chunked framing and then
    // holds the connection open. Before the Invalid/Incomplete split
    // the client would sit in recv() until its 10-second socket
    // timeout; now it must abort as soon as the framing is known bad.
    int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    int one = 1;
    ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 1), 0);
    socklen_t alen = sizeof(addr);
    ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr *>(&addr),
                            &alen),
              0);
    std::uint16_t port = ntohs(addr.sin_port);

    std::thread server([lfd]() {
        int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd < 0)
            return;
        char buf[1024];
        (void)::recv(cfd, buf, sizeof(buf), 0); // The request.
        const char *resp =
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            "zz!!\r\n";
        (void)::send(cfd, resp, strlen(resp), MSG_NOSIGNAL);
        // Hold the connection open; the client must not wait us out.
        (void)::recv(cfd, buf, sizeof(buf), 0);
        ::close(cfd);
    });

    auto t0 = std::chrono::steady_clock::now();
    web::PersistentClient client("127.0.0.1", port);
    auto resp = client.get("/anything");
    double elapsed = secondsSince(t0);
    EXPECT_FALSE(resp.has_value());
    EXPECT_FALSE(client.connected())
        << "a corrupt connection must be torn down, not reused";
    EXPECT_LT(elapsed, 5.0)
        << "client blocked on its socket timeout instead of aborting";

    ::close(lfd);
    server.join();
}

// ---------------------------------------------------------------------
// SSE Last-Event-ID hardening
// ---------------------------------------------------------------------

TEST(ParseHardening, MalformedLastEventIdMeansFullReplay)
{
    // Regression: "Last-Event-ID: 1junk" used to strtoull-parse as 1
    // and resume mid-stream from a corrupt position. A malformed id
    // must be treated as no resume point (the fresh-client full
    // replay), never as a silent partial resume.
    gpu::PlatformConfig pcfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::applyEngineEnv(pcfg);
    gpu::Platform plat(pcfg);
    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    mcfg.autoSample = false; // Manual passes only: version is ours.
    mcfg.sampleIntervalMs = 1;
    mcfg.metricsIntervalMs = 1;
    rtm::Monitor mon(mcfg);
    mon.registerEngine(&plat.engine());
    ASSERT_TRUE(mon.startServer());
    // autoSample=false takes no automatic pass — not even the
    // sampler's first-wake metrics pass. With the 1 ms cadences above,
    // a stray sampler would have bumped the version many times over.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(mon.metrics().version(), 0u)
        << "a sampling pass fired despite autoSample=false";
    mon.metricsSamplePass();
    mon.metricsSamplePass();
    mon.metricsSamplePass(); // version == 3

    const std::string target =
        "/api/v1/metrics/stream?name=akita_engine_events_total&"
        "max_events=1";
    auto streamWith = [&](const std::string &lastEventId) {
        return rawFetch(mon.serverPort(),
                        "GET " + target + " HTTP/1.1\r\nHost: t\r\n" +
                            "Last-Event-ID: " + lastEventId + "\r\n" +
                            "Connection: close\r\n\r\n");
    };

    // Control: a valid id resumes exactly after it.
    auto valid = sseIds(streamWith("1"));
    ASSERT_EQ(valid.size(), 1u);
    EXPECT_EQ(valid[0], 2u);

    // Trailing garbage, signs, or overflow: fall back to the
    // fresh-client position (the newest pass), not a bogus partial
    // resume. (Leading whitespace is not in this list: header-value
    // OWS is stripped by the request parser before the handler sees
    // it, so "Last-Event-ID:   3" is legitimately the valid id 3.)
    for (const char *bad :
         {"1junk", "+2", "-2", "99999999999999999999999999"}) {
        auto ids = sseIds(streamWith(bad));
        ASSERT_EQ(ids.size(), 1u) << "Last-Event-ID: " << bad;
        EXPECT_EQ(ids[0], 3u) << "Last-Event-ID: " << bad;
    }

    mon.stopServer();
}

// ---------------------------------------------------------------------
// Gateway: prefix routing and fleet aggregation
// ---------------------------------------------------------------------

TEST(Gateway, MountedRoutesAreByteIdenticalToStandaloneServer)
{
    rtm::Fleet fleet(quietFleet(4));
    ASSERT_TRUE(fleet.start());
    runFleetWorkloads(fleet);

    // The same monitor, served both ways: its own server and the
    // gateway mount. The prefix strip must make the bodies (and thus
    // the cache keys and ETags) match byte for byte.
    ASSERT_TRUE(fleet.monitor(0).startServer());
    web::HttpClient own("127.0.0.1", fleet.monitor(0).serverPort());
    web::HttpClient gw("127.0.0.1", fleet.gateway().port());
    // /api/status is excluded: its hang block embeds frozen_for_sec,
    // which moves with wall time between the two fetches.
    for (const char *target :
         {"/api/components", "/api/v1/components",
          "/api/buffers?sort=percent&top=20", "/api/progress",
          "/api/topology"}) {
        auto a = own.get(target);
        auto b = gw.get(std::string("/sim/sim0") + target);
        ASSERT_TRUE(a.has_value()) << target;
        ASSERT_TRUE(b.has_value()) << target;
        EXPECT_EQ(a->status, 200) << target;
        EXPECT_EQ(b->status, 200) << target;
        EXPECT_EQ(a->body, b->body) << target;
    }
    fleet.monitor(0).stopServer();

    // Unknown simulation: 404, not a fall-through to the fleet routes.
    auto missing = gw.get("/sim/nosuch/api/status");
    ASSERT_TRUE(missing.has_value());
    EXPECT_EQ(missing->status, 404);

    // Bare mount prefix: 301 to the trailing-slash form so the
    // dashboard's relative URLs resolve inside the mount.
    auto bare = gw.get("/sim/sim0");
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->status, 301);
    EXPECT_EQ(bare->headers.at("location"), "/sim/sim0/");

    // The index page links every simulation.
    auto index = gw.get("/");
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(index->status, 200);
    for (const char *id : {"sim0", "sim1", "sim2", "sim3"})
        EXPECT_NE(index->body.find(id), std::string::npos) << id;
}

TEST(Gateway, FleetAggregationMatchesPerSimState)
{
    rtm::Fleet fleet(quietFleet(4));
    ASSERT_TRUE(fleet.start());
    runFleetWorkloads(fleet);

    std::uint64_t wantEvents = 0;
    std::uint64_t wantSlowest =
        fleet.platform(0).engine().now();
    for (std::size_t i = 0; i < fleet.size(); i++) {
        wantEvents += fleet.platform(i).engine().eventCount();
        wantSlowest =
            std::min(wantSlowest,
                     static_cast<std::uint64_t>(
                         fleet.platform(i).engine().now()));
    }

    web::HttpClient c("127.0.0.1", fleet.gateway().port());
    Json f = getJson(c, "/api/v1/fleet");
    EXPECT_EQ(f.getInt("num_sims", 0), 4);
    EXPECT_EQ(static_cast<std::uint64_t>(f.getInt("total_events", 0)),
              wantEvents);
    const Json *sims = f.get("sims");
    ASSERT_NE(sims, nullptr);
    ASSERT_EQ(sims->size(), 4u);
    for (std::size_t i = 0; i < 4; i++) {
        const Json *status = sims->at(i).get("status");
        ASSERT_NE(status, nullptr) << i;
        EXPECT_EQ(status->getStr("id"), "sim" + std::to_string(i));
        EXPECT_EQ(static_cast<std::uint64_t>(
                      status->getInt("events", 0)),
                  fleet.platform(i).engine().eventCount());
        ASSERT_NE(sims->at(i).get("hang"), nullptr) << i;
        EXPECT_EQ(sims->at(i).getStr("url"),
                  "/sim/sim" + std::to_string(i) + "/");
    }
    const Json *slowest = f.get("slowest");
    ASSERT_NE(slowest, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(slowest->getInt("now_ps", 0)),
              wantSlowest);

    Json engines = getJson(c, "/api/v1/fleet/engines");
    ASSERT_EQ(engines.size(), 4u);
    for (std::size_t i = 0; i < 4; i++) {
        EXPECT_EQ(engines.at(i).getStr("id"),
                  "sim" + std::to_string(i));
        EXPECT_FALSE(engines.at(i).getBool("running", true));
    }

    Json slow = getJson(c, "/api/v1/fleet/slowest");
    EXPECT_EQ(static_cast<std::uint64_t>(slow.getInt("now_ps", 0)),
              wantSlowest);

    // The hottest buffer of a drained fleet still answers (possibly
    // with an idle buffer at 0%); the shape must hold.
    auto hot = c.get("/api/v1/fleet/hottest-buffer");
    ASSERT_TRUE(hot.has_value());
    EXPECT_EQ(hot->status, 200);

    Json progress = getJson(c, "/api/v1/fleet/progress");
    ASSERT_EQ(progress.size(), 4u);
    for (std::size_t i = 0; i < 4; i++)
        EXPECT_GE(progress.at(i).get("bars")->size(), 1u)
            << "sim " << i << " ran a kernel";
}

TEST(Gateway, FleetMetricsExposeGauges)
{
    rtm::Fleet fleet(quietFleet(4));
    ASSERT_TRUE(fleet.start());

    web::HttpClient c("127.0.0.1", fleet.gateway().port());
    auto r = c.get("/metrics");
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->status, 200);
    EXPECT_NE(r->body.find("akita_rtm_fleet_sims 4"),
              std::string::npos)
        << r->body.substr(0, 400);
    EXPECT_NE(r->body.find("akita_rtm_fleet_events_total"),
              std::string::npos);
    EXPECT_NE(r->body.find("akita_rtm_fleet_slowest_now_ps"),
              std::string::npos);
    for (const char *id : {"sim0", "sim1", "sim2", "sim3"}) {
        EXPECT_NE(r->body.find("akita_rtm_fleet_sim_events{sim=\"" +
                               std::string(id) + "\"}"),
                  std::string::npos)
            << id;
    }
}

TEST(Gateway, AddSimulationValidatesIds)
{
    rtm::GatewayConfig gcfg;
    gcfg.announceUrl = false;
    rtm::Gateway gw(gcfg);
    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    rtm::Monitor mon(mcfg);

    EXPECT_FALSE(gw.addSimulation("", &mon));
    EXPECT_FALSE(gw.addSimulation("bad id", &mon));
    EXPECT_FALSE(gw.addSimulation("bad/id", &mon));
    EXPECT_FALSE(gw.addSimulation("ok", nullptr));
    EXPECT_TRUE(gw.addSimulation("ok-1.a_b", &mon));
    EXPECT_FALSE(gw.addSimulation("ok-1.a_b", &mon)) << "duplicate";
    EXPECT_EQ(gw.size(), 1u);
    EXPECT_EQ(gw.simulation("ok-1.a_b"), &mon);
    EXPECT_EQ(gw.simulation("nosuch"), nullptr);
}

// ---------------------------------------------------------------------
// Gateway: sharded cache and delta SSE
// ---------------------------------------------------------------------

TEST(Gateway, CacheShardFloodCannotEvictOtherShards)
{
    constexpr std::size_t kShards = 4;
    constexpr std::size_t kMaxPerShard = 8;
    rtm::ShardedResponseCache sc(kShards, kMaxPerShard);

    // Pick a flooder sim id hashing to a different shard than the
    // victim's.
    const std::string victimSim = "victim";
    const std::string endpoint = "/fleet/fragment";
    std::size_t victimShard = rtm::ShardedResponseCache::shardIndex(
        victimSim, endpoint, kShards);
    std::string flooderSim;
    for (int i = 0; i < 64 && flooderSim.empty(); i++) {
        std::string candidate = "noisy" + std::to_string(i);
        if (rtm::ShardedResponseCache::shardIndex(candidate, endpoint,
                                                  kShards) !=
            victimShard)
            flooderSim = candidate;
    }
    ASSERT_FALSE(flooderSim.empty());

    std::atomic<int> victimBuilds{0};
    auto victimBuild = [&victimBuilds]() {
        victimBuilds++;
        return std::string("victim-body");
    };
    sc.shard(victimSim, endpoint)
        .get("victim-key", 1, "application/json", victimBuild, 0);
    EXPECT_EQ(victimBuilds.load(), 1);

    // Flood the noisy sim's shard far past its LRU cap.
    rtm::ResponseCache &noisy = sc.shard(flooderSim, endpoint);
    for (int i = 0; i < 100; i++) {
        noisy.get("key-" + std::to_string(i), 1, "application/json",
                  []() { return std::string("x"); }, 0);
    }

    // The victim's entry survived: same generation serves from cache.
    auto entry = sc.shard(victimSim, endpoint)
                     .get("victim-key", 1, "application/json",
                          victimBuild, 0);
    EXPECT_EQ(entry->body, "victim-body");
    EXPECT_EQ(victimBuilds.load(), 1)
        << "flooding another shard rebuilt the victim's entry";

    // But within the flooded shard the cap did evict: re-fetching the
    // first flooded key rebuilds it.
    std::uint64_t builds = sc.buildCount();
    noisy.get("key-0", 1, "application/json",
              []() { return std::string("x"); }, 0);
    EXPECT_EQ(sc.buildCount(), builds + 1);

    // Summed counters see every shard.
    EXPECT_GE(sc.buildCount(), 102u);
    EXPECT_GE(sc.hitCount(), 1u);
}

TEST(Gateway, FleetStreamSendsPerSimDeltas)
{
    rtm::Fleet fleet(quietFleet(4));
    ASSERT_TRUE(fleet.start());

    // Quiesced fleet (nothing ran): event 1 is the full fleet, then
    // the stream goes silent until something changes.
    int fd = rawConnect(fleet.gateway().port());
    const char *req =
        "GET /api/v1/fleet/stream?max_events=2 HTTP/1.1\r\n"
        "Host: t\r\n\r\n";
    ASSERT_EQ(::send(fd, req, strlen(req), MSG_NOSIGNAL),
              static_cast<ssize_t>(strlen(req)));

    // Read until the first event's terminating blank line.
    std::string got;
    char buf[4096];
    while (got.find("data: ") == std::string::npos ||
           got.find("\n\n", got.find("data: ")) == std::string::npos) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0) << "stream ended before the first event";
        got.append(buf, static_cast<std::size_t>(n));
    }
    std::size_t firstDataAt = got.find("data: ");
    std::size_t firstEnd = got.find("\n\n", firstDataAt);
    std::string firstEvent = got.substr(0, firstEnd);
    for (const char *id : {"sim0", "sim1", "sim2", "sim3"}) {
        EXPECT_EQ(countOf(firstEvent,
                          "\"id\":\"" + std::string(id) + "\""),
                  1u)
            << "first event must carry every sim: " << id;
    }

    // Let a few no-change scans pass, then mutate exactly one sim.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    fleet.monitor(1).createProgressBar("probe", 10);

    // The stream closes itself after event 2 (max_events=2).
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        got.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    auto ids = sseIds(got);
    ASSERT_EQ(ids.size(), 2u) << got;
    EXPECT_EQ(ids[0], 1u);
    EXPECT_EQ(ids[1], 2u);
    std::string secondEvent = got.substr(firstEnd + 2);
    EXPECT_EQ(countOf(secondEvent, "\"id\":\"sim1\""), 1u)
        << secondEvent;
    for (const char *id : {"sim0", "sim2", "sim3"}) {
        EXPECT_EQ(countOf(secondEvent,
                          "\"id\":\"" + std::string(id) + "\""),
                  0u)
            << "delta event must only carry the changed sim, got "
            << id << " in: " << secondEvent;
    }
    EXPECT_NE(secondEvent.find("probe"), std::string::npos)
        << "the delta must reflect the mutation";
}

// ---------------------------------------------------------------------
// --fleet plumbing
// ---------------------------------------------------------------------

TEST(Gateway, FleetFlagAndEnvParse)
{
    {
        gpu::PlatformConfig cfg;
        char a0[] = "prog";
        char a1[] = "--fleet=3";
        char *argv[] = {a0, a1};
        gpu::applyEngineArgs(cfg, 2, argv);
        EXPECT_EQ(cfg.fleet, 3);
    }
    {
        gpu::PlatformConfig cfg;
        char a0[] = "prog";
        char a1[] = "--fleet=0"; // Clamped to a sane floor.
        char *argv[] = {a0, a1};
        gpu::applyEngineArgs(cfg, 2, argv);
        EXPECT_EQ(cfg.fleet, 1);
    }
    {
        ::setenv("AKITA_FLEET", "5", 1);
        gpu::PlatformConfig cfg;
        gpu::applyEngineEnv(cfg);
        EXPECT_EQ(cfg.fleet, 5);
        ::unsetenv("AKITA_FLEET");
    }
}
