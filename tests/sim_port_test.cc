/**
 * @file
 * Unit and property tests for buffers, ports, connections, and ticking
 * components — the message-passing substrate whose backpressure makes
 * the buffer analyzer meaningful.
 */

#include <gtest/gtest.h>

#include "sim/sim.hh"

using namespace akita::sim;

namespace
{

/** Minimal message type with a payload for identity checks. */
class TestMsg : public Msg
{
  public:
    static constexpr MsgKind kKind = MsgKind::TestA;

    explicit TestMsg(int v) : Msg(kKind), value(v) {}

    const char *kind() const override { return "TestMsg"; }

    int value;
};

MsgPtr
mkMsg(int v)
{
    return makeMsg<TestMsg>(v);
}

} // namespace

TEST(Buffer, PushPopFifo)
{
    Buffer buf("b", 4);
    buf.push(mkMsg(1));
    buf.push(mkMsg(2));
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(msgCast<TestMsg>(buf.pop())->value, 1);
    EXPECT_EQ(msgCast<TestMsg>(buf.pop())->value, 2);
    EXPECT_EQ(buf.pop(), nullptr);
}

TEST(Buffer, CapacityEnforced)
{
    Buffer buf("b", 2);
    buf.push(mkMsg(1));
    buf.push(mkMsg(2));
    EXPECT_TRUE(buf.full());
    EXPECT_FALSE(buf.canPush());
    EXPECT_THROW(buf.push(mkMsg(3)), std::runtime_error);
}

TEST(Buffer, StatsTrackPeakAndTotal)
{
    Buffer buf("b", 4);
    buf.push(mkMsg(1));
    buf.push(mkMsg(2));
    buf.push(mkMsg(3));
    buf.pop();
    buf.pop();
    buf.push(mkMsg(4));
    EXPECT_EQ(buf.totalPushed(), 4u);
    EXPECT_EQ(buf.peakSize(), 3u);
    EXPECT_DOUBLE_EQ(buf.fullness(), 0.5);
}

TEST(Buffer, PopMatchingBypassesHeadOfLine)
{
    Buffer buf("b", 4);
    buf.push(mkMsg(10));
    buf.push(mkMsg(20));
    buf.push(mkMsg(30));
    MsgPtr m = buf.popMatching([](const Msg &msg) {
        return static_cast<const TestMsg &>(msg).value == 20;
    });
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(msgCast<TestMsg>(m)->value, 20);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(msgCast<TestMsg>(buf.peek())->value, 10);
    EXPECT_EQ(buf.popMatching([](const Msg &) { return false; }),
              nullptr);
}

TEST(Buffer, InspectableFields)
{
    Buffer buf("GPU[0].X.TopPort.Buf", 8);
    buf.push(mkMsg(1));
    EXPECT_EQ(buf.fields().find("size")->getter().intVal(), 1);
    EXPECT_EQ(buf.fields().find("capacity")->getter().intVal(), 8);
}

namespace
{

/**
 * A scripted component for port tests: it retrieves everything
 * delivered to its port and re-sends queued outgoing messages.
 */
class Node : public TickingComponent
{
  public:
    Node(Engine *engine, const std::string &name, std::size_t buf_cap)
        : TickingComponent(engine, name, Freq::ghz(1))
    {
        in = addPort("In", buf_cap);
    }

    bool
    tick() override
    {
        bool progress = false;
        // Send queued messages.
        while (!outbox.empty()) {
            MsgPtr m = outbox.front();
            m->dst = target;
            if (in->send(m) != SendStatus::Ok)
                break;
            outbox.erase(outbox.begin());
            sent++;
            progress = true;
        }
        // Drain incoming at the configured rate.
        for (std::size_t i = 0; i < drainPerTick; i++) {
            MsgPtr m = in->retrieveIncoming();
            if (m == nullptr)
                break;
            received.push_back(msgCast<TestMsg>(m)->value);
            progress = true;
        }
        return progress;
    }

    Port *in = nullptr;
    Port *target = nullptr;
    std::vector<MsgPtr> outbox;
    std::vector<int> received;
    std::size_t drainPerTick = 4;
    int sent = 0;
};

} // namespace

TEST(PortConnection, DeliversWithLatency)
{
    SerialEngine eng;
    Node a(&eng, "A", 4), b(&eng, "B", 4);
    DirectConnection conn(&eng, "Conn", 5 * kNanosecond);
    conn.plugIn(a.in);
    conn.plugIn(b.in);

    a.target = b.in;
    a.outbox.push_back(mkMsg(42));
    a.tickLater();
    eng.run();

    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0], 42);
}

TEST(PortConnection, MessagesArriveInSendOrder)
{
    SerialEngine eng;
    Node a(&eng, "A", 16), b(&eng, "B", 16);
    DirectConnection conn(&eng, "Conn", kNanosecond);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    a.target = b.in;
    for (int i = 0; i < 10; i++)
        a.outbox.push_back(mkMsg(i));
    a.tickLater();
    eng.run();
    ASSERT_EQ(b.received.size(), 10u);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(b.received[i], i);
}

TEST(PortConnection, BackpressureAndWakeRecovery)
{
    SerialEngine eng;
    Node a(&eng, "A", 4), b(&eng, "B", 2);
    DirectConnection conn(&eng, "Conn", kNanosecond);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    a.target = b.in;
    b.drainPerTick = 1; // B drains slower than A sends.
    for (int i = 0; i < 20; i++)
        a.outbox.push_back(mkMsg(i));
    a.tickLater();
    eng.run();

    // Despite B's two-slot buffer, every message must arrive exactly
    // once and in order (conservation under backpressure).
    ASSERT_EQ(b.received.size(), 20u);
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(b.received[i], i);
    EXPECT_GT(a.in->totalSendRejections(), 0u);
}

TEST(PortConnection, ReservationPreventsOverflow)
{
    // Even with zero drain, in-flight messages must never overflow the
    // destination buffer (capacity is reserved at send time).
    SerialEngine eng;
    Node a(&eng, "A", 4), b(&eng, "B", 3);
    DirectConnection conn(&eng, "Conn", 100 * kNanosecond);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    a.target = b.in;
    b.drainPerTick = 0;
    for (int i = 0; i < 10; i++)
        a.outbox.push_back(mkMsg(i));
    a.tickLater();
    eng.run();
    EXPECT_EQ(b.in->buf().size(), 3u);
    EXPECT_EQ(a.sent, 3);
}

TEST(PortConnection, SendWithoutConnectionThrows)
{
    SerialEngine eng;
    Node a(&eng, "A", 4), b(&eng, "B", 4);
    MsgPtr m = mkMsg(1);
    m->dst = b.in;
    EXPECT_THROW(a.in->send(m), std::runtime_error);
}

TEST(PortConnection, SendWithoutDestinationThrows)
{
    SerialEngine eng;
    Node a(&eng, "A", 4);
    DirectConnection conn(&eng, "Conn", 0);
    conn.plugIn(a.in);
    EXPECT_THROW(a.in->send(mkMsg(1)), std::runtime_error);
}

TEST(PortConnection, UnreachableDestinationThrows)
{
    SerialEngine eng;
    Node a(&eng, "A", 4), b(&eng, "B", 4);
    DirectConnection c1(&eng, "C1", 0), c2(&eng, "C2", 0);
    c1.plugIn(a.in);
    c2.plugIn(b.in);
    MsgPtr m = mkMsg(1);
    m->dst = b.in;
    EXPECT_THROW(a.in->send(m), std::runtime_error);
}

TEST(Port, FailedSendRestoresSource)
{
    // A component that forwards a message it received must still see
    // the original src when a send fails and it re-peeks the message.
    SerialEngine eng;
    Node a(&eng, "A", 4), b(&eng, "B", 1), c(&eng, "C", 1);
    DirectConnection conn(&eng, "Conn", 0);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    conn.plugIn(c.in);

    // Fill C's single slot so the next send is rejected.
    MsgPtr fill = mkMsg(0);
    fill->dst = c.in;
    ASSERT_EQ(a.in->send(fill), SendStatus::Ok);

    MsgPtr m = mkMsg(7);
    m->src = b.in; // Simulates "received from B".
    m->dst = c.in;
    EXPECT_EQ(a.in->send(m), SendStatus::Busy);
    EXPECT_EQ(m->src, b.in); // Restored, not clobbered to a.in.
}

TEST(Ticking, SleepsWithoutWorkAndWakesOnDelivery)
{
    SerialEngine eng;
    Node a(&eng, "A", 4), b(&eng, "B", 4);
    DirectConnection conn(&eng, "Conn", kNanosecond);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    a.target = b.in;
    a.tickLater();
    eng.run(); // A has nothing to do: ticks once, sleeps.
    EXPECT_TRUE(a.asleep());
    std::uint64_t ticksBefore = b.totalTicks();

    // Delivery wakes B.
    a.outbox.push_back(mkMsg(1));
    a.wake();
    eng.run();
    EXPECT_EQ(b.received.size(), 1u);
    EXPECT_GT(b.totalTicks(), ticksBefore);
}

TEST(Ticking, ProgressCountsTracked)
{
    SerialEngine eng;
    Node a(&eng, "A", 4);
    a.tickLater();
    eng.run();
    EXPECT_EQ(a.totalTicks(), 1u);
    EXPECT_EQ(a.progressTicks(), 0u);
}

TEST(Ticking, ScheduleTickAtDeduplicatesSameCycle)
{
    SerialEngine eng;

    class Counter : public TickingComponent
    {
      public:
        Counter(Engine *e)
            : TickingComponent(e, "Counter", Freq::ghz(1))
        {
        }

        bool
        tick() override
        {
            ticks++;
            return false;
        }

        int ticks = 0;
    } c(&eng);

    // Multiple schedules landing on the same cycle must tick once.
    c.scheduleTickAt(5000);
    c.scheduleTickAt(5000);
    c.scheduleTickAt(2000); // An earlier one is allowed in addition.
    eng.run();
    EXPECT_EQ(c.ticks, 2); // Once at 2000, once at 5000.
}

TEST(Component, PortAndBufferEnumeration)
{
    SerialEngine eng;
    Node a(&eng, "GPU[0].X", 4);
    Buffer internal("GPU[0].X.Internal.Buf", 2);
    a.registerBuffer(&internal);

    EXPECT_EQ(a.port("In"), a.in);
    EXPECT_EQ(a.port("Nope"), nullptr);
    auto bufs = a.buffers();
    ASSERT_EQ(bufs.size(), 2u);
    EXPECT_EQ(bufs[0]->name(), "GPU[0].X.In.Buf");
    EXPECT_EQ(bufs[1]->name(), "GPU[0].X.Internal.Buf");
}

struct FanParams
{
    std::size_t senders;
    std::size_t bufCap;
    int msgsPerSender;
};

class FanInConservation : public ::testing::TestWithParam<FanParams>
{
};

TEST_P(FanInConservation, NoLossNoDuplication)
{
    // Property: under arbitrary fan-in contention, the receiver gets
    // exactly the multiset of sent messages.
    const FanParams p = GetParam();
    SerialEngine eng;
    DirectConnection conn(&eng, "Conn", kNanosecond);

    Node sink(&eng, "Sink", p.bufCap);
    conn.plugIn(sink.in);
    sink.drainPerTick = 2;

    std::vector<std::unique_ptr<Node>> senders;
    for (std::size_t s = 0; s < p.senders; s++) {
        auto n = std::make_unique<Node>(
            &eng, "S" + std::to_string(s), 2);
        conn.plugIn(n->in);
        n->target = sink.in;
        for (int i = 0; i < p.msgsPerSender; i++)
            n->outbox.push_back(
                mkMsg(static_cast<int>(s) * 1000000 + i));
        n->tickLater();
        senders.push_back(std::move(n));
    }
    eng.run();

    ASSERT_EQ(sink.received.size(), p.senders * p.msgsPerSender);
    std::set<int> uniq(sink.received.begin(), sink.received.end());
    EXPECT_EQ(uniq.size(), sink.received.size()) << "duplicates";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FanInConservation,
    ::testing::Values(FanParams{1, 1, 50}, FanParams{2, 1, 40},
                      FanParams{4, 2, 30}, FanParams{8, 3, 25},
                      FanParams{16, 1, 10}, FanParams{3, 16, 100}));
