/**
 * @file
 * Tests for the parallel same-timestamp event engine: determinism
 * against the serial engine at one worker, per-handler FIFO at many
 * workers, cohort barrier semantics, the full monitor contract
 * (pause/resume, wait-when-empty + kick-start, withLock), and the RTM
 * monitor surface driving a GPU platform on the parallel engine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "gpu/platform.hh"
#include "rtm/monitor.hh"
#include "sim/sim.hh"

using namespace akita;
using namespace akita::sim;

namespace
{

/** Records the (time, handler) sequence of executed events. */
class OrderHook : public Hook
{
  public:
    void
    func(HookCtx &ctx) override
    {
        if (ctx.pos != &hookPosBeforeEvent)
            return;
        auto *e = static_cast<Event *>(ctx.item);
        std::lock_guard<std::mutex> lk(mu_);
        order.emplace_back(e->time(), e->handler());
    }

    std::vector<std::pair<VTime, EventHandler *>> order;

  private:
    std::mutex mu_;
};

/** A handler that re-schedules itself a fixed number of times. */
class ChainHandler : public EventHandler
{
  public:
    ChainHandler(Engine *eng, int id, VTime period, int count)
        : eng_(eng), id_(id), period_(period), remaining_(count)
    {
    }

    void
    handle(Event &e) override
    {
        fired_++;
        times_.push_back(e.time());
        if (--remaining_ > 0)
            eng_->schedule(
                std::make_unique<Event>(e.time() + period_, this));
    }

    std::string
    handlerName() const override
    {
        return "Chain" + std::to_string(id_);
    }

    int id() const { return id_; }
    int fired() const { return fired_; }
    const std::vector<VTime> &times() const { return times_; }

  private:
    Engine *eng_;
    int id_;
    VTime period_;
    int remaining_;
    int fired_ = 0;
    std::vector<VTime> times_;
};

/**
 * A deterministic multi-handler workload: several chains with clashing
 * periods so many events share timestamps.
 */
std::vector<std::unique_ptr<ChainHandler>>
buildScenario(Engine &eng)
{
    std::vector<std::unique_ptr<ChainHandler>> handlers;
    const VTime periods[] = {2, 3, 5, 2, 3, 5, 4, 6};
    for (int i = 0; i < 8; i++) {
        handlers.push_back(std::make_unique<ChainHandler>(
            &eng, i, periods[i], 50));
        eng.schedule(std::make_unique<Event>(
            static_cast<VTime>(i % 2), handlers.back().get()));
    }
    return handlers;
}

/** Translates an order trace into (time, handler-id) via the map. */
std::vector<std::pair<VTime, int>>
normalize(const std::vector<std::pair<VTime, EventHandler *>> &trace,
          const std::vector<std::unique_ptr<ChainHandler>> &handlers)
{
    std::map<EventHandler *, int> ids;
    for (const auto &h : handlers)
        ids[h.get()] = h->id();
    std::vector<std::pair<VTime, int>> out;
    out.reserve(trace.size());
    for (const auto &rec : trace)
        out.emplace_back(rec.first, ids.at(rec.second));
    return out;
}

} // namespace

TEST(ParallelEngine, RunsEventsInTimeOrder)
{
    ParallelEngine eng(2);
    std::mutex mu;
    std::vector<VTime> seen;
    for (VTime t : {400u, 100u, 300u, 200u}) {
        eng.scheduleAt(t, "t", [&seen, &mu, &eng]() {
            std::lock_guard<std::mutex> lk(mu);
            seen.push_back(eng.now());
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Drained);
    EXPECT_EQ(seen, (std::vector<VTime>{100, 200, 300, 400}));
    EXPECT_EQ(eng.now(), 400u);
    EXPECT_EQ(eng.eventCount(), 4u);
    EXPECT_EQ(eng.scheduledCount(), 4u);
}

TEST(ParallelEngine, OneWorkerMatchesSerialEngineOrderExactly)
{
    SerialEngine serial;
    OrderHook serialHook;
    serial.acceptHook(&serialHook);
    auto serialHandlers = buildScenario(serial);
    EXPECT_EQ(serial.run(), RunResult::Drained);

    ParallelEngine par(1);
    OrderHook parHook;
    par.acceptHook(&parHook);
    auto parHandlers = buildScenario(par);
    EXPECT_EQ(par.run(), RunResult::Drained);

    auto a = normalize(serialHook.order, serialHandlers);
    auto b = normalize(parHook.order, parHandlers);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a, b) << "1-worker parallel order diverged from serial";
    EXPECT_EQ(par.eventCount(), serial.eventCount());
    EXPECT_EQ(par.now(), serial.now());
}

TEST(ParallelEngine, ManyWorkersPreservePerHandlerOrder)
{
    ParallelEngine eng(4);
    auto handlers = buildScenario(eng);
    EXPECT_EQ(eng.run(), RunResult::Drained);

    std::uint64_t total = 0;
    for (const auto &h : handlers) {
        EXPECT_EQ(h->fired(), 50) << "handler " << h->id();
        // Per-handler times must be strictly the chain's own sequence:
        // non-decreasing, stepping by the chain period.
        const auto &ts = h->times();
        for (std::size_t i = 1; i < ts.size(); i++)
            EXPECT_LT(ts[i - 1], ts[i]) << "handler " << h->id();
        total += ts.size();
    }
    EXPECT_EQ(eng.eventCount(), total);
    EXPECT_GT(eng.stepCount(), 0u);
    EXPECT_LE(eng.stepCount(), eng.eventCount());
}

TEST(ParallelEngine, SecondaryObservesAllCoTimedPrimaries)
{
    // The step barrier between phases: a secondary event at time T runs
    // only after every primary at T completed, even across workers.
    ParallelEngine eng(4);
    std::atomic<int> primaries{0};
    int observed = -1;
    for (int i = 0; i < 8; i++) {
        eng.schedule(std::make_unique<FuncEvent>(
            100, "p", [&primaries]() { primaries++; }));
    }
    eng.schedule(std::make_unique<FuncEvent>(
        100, "s", [&observed, &primaries]() {
            observed = primaries.load();
        },
        true));
    eng.run();
    EXPECT_EQ(observed, 8);
}

TEST(ParallelEngine, HandlersScheduleMoreEvents)
{
    ParallelEngine eng(2);
    std::atomic<int> fired{0};
    std::function<void()> chain = [&]() {
        if (fired.fetch_add(1) + 1 < 10)
            eng.scheduleAt(eng.now() + 10, "chain", chain);
    };
    eng.scheduleAt(0, "chain", chain);
    eng.run();
    EXPECT_EQ(fired.load(), 10);
    EXPECT_EQ(eng.now(), 90u);
}

TEST(ParallelEngine, SchedulingInPastThrows)
{
    ParallelEngine eng(2);
    eng.scheduleAt(100, "x", []() {});
    eng.run();
    EXPECT_THROW(eng.scheduleAt(50, "late", []() {}),
                 std::runtime_error);
    EXPECT_NO_THROW(eng.scheduleAt(100, "now", []() {}));
}

TEST(ParallelEngine, HandlerExceptionPropagatesFromRun)
{
    ParallelEngine eng(2);
    eng.scheduleAt(10, "boom", []() {
        throw std::runtime_error("handler failure");
    });
    EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(ParallelEngine, StopAbortsRun)
{
    ParallelEngine eng(2);
    std::atomic<int> fired{0};
    for (int i = 1; i <= 100; i++) {
        eng.scheduleAt(static_cast<VTime>(i * 10), "n", [&]() {
            if (fired.fetch_add(1) + 1 == 5)
                eng.stop();
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Stopped);
    EXPECT_LT(fired.load(), 100);
    EXPECT_EQ(eng.run(), RunResult::Drained);
    EXPECT_EQ(fired.load(), 100);
}

TEST(ParallelEngine, PauseAndResumeFromAnotherThread)
{
    ParallelEngine eng(2);
    std::atomic<int> fired{0};
    std::function<void()> chain = [&]() {
        if (fired.fetch_add(1) + 1 < 10000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });

    while (fired.load() < 100)
        std::this_thread::yield();
    eng.pause();
    EXPECT_TRUE(eng.paused());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    int atPause = fired.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // At most one in-flight cohort (size 1 here) finishes after pause.
    EXPECT_LE(fired.load(), atPause + 1);

    eng.resume();
    runner.join();
    EXPECT_EQ(fired.load(), 10000);
}

TEST(ParallelEngine, WaitWhenEmptyBlocksAndExternalScheduleRevives)
{
    ParallelEngine eng(2);
    eng.setWaitWhenEmpty(true);

    std::atomic<int> fired{0};
    eng.scheduleAt(10, "a", [&]() { fired++; });

    std::thread runner([&]() { eng.run(); });

    while (fired.load() < 1)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(eng.running());
    EXPECT_TRUE(eng.drainedWaiting());

    // RTM's Tick / kick-start path: an external schedule revives it.
    eng.scheduleAt(eng.now() + 5, "b", [&]() {
        fired++;
        eng.stop();
    });
    runner.join();
    EXPECT_EQ(fired.load(), 2);
    EXPECT_FALSE(eng.running());
}

TEST(ParallelEngine, WithLockGivesConsistentSnapshots)
{
    ParallelEngine eng(4);

    // Two counters incremented in the same handler must never be seen
    // out of sync from under the lock (the step barrier).
    std::int64_t a = 0, b = 0;
    std::function<void()> chain = [&]() {
        a++;
        b++;
        if (a < 20000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });
    for (int i = 0; i < 200; i++) {
        eng.withLock([&]() { EXPECT_EQ(a, b); });
    }
    runner.join();
    EXPECT_EQ(a, 20000);
}

TEST(ParallelEngine, WithLockFromHandlerRunsInline)
{
    // withLock() called by an executing handler must not deadlock on
    // the step lock the coordinator already holds.
    ParallelEngine eng(2);
    bool ran = false;
    eng.scheduleAt(10, "h", [&]() {
        eng.withLock([&ran]() { ran = true; });
    });
    eng.run();
    EXPECT_TRUE(ran);
}

TEST(ParallelEngine, InspectableFieldsAndHooks)
{
    ParallelEngine eng(2);
    eng.scheduleAt(5, "e", []() {});
    const auto &fields = eng.fields();
    EXPECT_NE(fields.find("now_ps"), nullptr);
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 1);
    EXPECT_EQ(fields.find("workers")->getter().intVal(), 2);

    class CountingHook : public Hook
    {
      public:
        void
        func(HookCtx &ctx) override
        {
            if (ctx.pos == &hookPosBeforeEvent)
                before++;
            if (ctx.pos == &hookPosAfterEvent)
                after++;
            if (ctx.pos == &hookPosQueueDrained)
                drained++;
        }

        std::atomic<int> before{0}, after{0}, drained{0};
    };

    CountingHook hook;
    eng.acceptHook(&hook);
    for (int i = 0; i < 7; i++)
        eng.scheduleAt(static_cast<VTime>(10 + i), "e", []() {});
    eng.run();
    EXPECT_EQ(hook.before.load(), 8);
    EXPECT_EQ(hook.after.load(), 8);
    EXPECT_EQ(hook.drained.load(), 1);
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 0);
    EXPECT_EQ(fields.find("total_events")->getter().intVal(), 8);
}

// ---- The RTM monitor surface against a parallel-engine platform ----

namespace
{

gpu::KernelDescriptor
smallKernel(std::uint32_t wgs)
{
    gpu::KernelDescriptor k;
    k.name = "small";
    k.numWorkGroups = wgs;
    k.wavefrontsPerWG = 2;
    k.trace = [](std::uint32_t wg, std::uint32_t wf) {
        std::vector<gpu::WfOp> ops;
        for (int i = 0; i < 4; i++) {
            ops.push_back(gpu::WfOp::load(
                0x10000ull + (wg * 64 + wf * 16 + i) * 4096, 64, 2));
        }
        return ops;
    };
    return k;
}

} // namespace

TEST(ParallelEngineRtm, PlatformSelectsEngineKind)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.engineKind = gpu::EngineKind::Parallel;
    cfg.workers = 2;
    gpu::Platform plat(cfg);
    auto *pe = dynamic_cast<ParallelEngine *>(&plat.engine());
    ASSERT_NE(pe, nullptr);
    EXPECT_EQ(pe->workers(), 2);
}

TEST(ParallelEngineRtm, ApplyEngineArgsParsesFlags)
{
    gpu::PlatformConfig cfg;
    const char *argvConst[] = {"prog", "--engine=parallel",
                               "--workers=3"};
    gpu::applyEngineArgs(cfg, 3, const_cast<char **>(argvConst));
    EXPECT_EQ(cfg.engineKind, gpu::EngineKind::Parallel);
    EXPECT_EQ(cfg.workers, 3);

    const char *argvSerial[] = {"prog", "--engine=serial"};
    gpu::applyEngineArgs(cfg, 2, const_cast<char **>(argvSerial));
    EXPECT_EQ(cfg.engineKind, gpu::EngineKind::Serial);
}

TEST(ParallelEngineRtm, FullMonitorSurface)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.engineKind = gpu::EngineKind::Parallel;
    cfg.workers = 3;
    gpu::Platform plat(cfg);

    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    mcfg.sampleIntervalMs = 10;
    mcfg.hangThresholdSec = 0.15;
    rtm::Monitor mon(mcfg);
    mon.registerEngine(&plat.engine());
    for (auto *c : plat.components())
        mon.registerComponent(c);
    plat.driver().setProgressListener(&mon);
    // Keep the engine alive after the kernel completes: the monitor put
    // it in wait-when-empty mode, and with auto-stop the driver would
    // tear it down before the hang detector can observe drained-waiting.
    plat.driver().setAutoStop(false);

    auto k = smallKernel(32);
    plat.launchKernel(&k);
    mon.startProfiling();
    std::thread runner([&]() { plat.run(); });

    // Progress: virtual time and events advance while we watch.
    VTime t0 = plat.engine().now();
    for (int i = 0; i < 500 && !plat.driver().allKernelsDone(); i++) {
        mon.status();
        mon.bufferLevels(rtm::BufferSort::ByPercent, 5);
        mon.metricsSamplePass();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(plat.driver().allKernelsDone());
    EXPECT_GT(plat.engine().now(), t0);

    // Pause / resume through the monitor.
    mon.pause();
    EXPECT_TRUE(mon.paused());
    mon.resume();
    EXPECT_FALSE(mon.paused());

    // Profiler collected handler scopes from worker threads.
    auto prof = mon.profile(20);
    EXPECT_FALSE(prof.entries.empty());
    mon.stopProfiling();

    // Hang detection: the drained-waiting engine freezes virtual time.
    // The watch is pull-based (frozen-time is measured between checks),
    // so poll it the way the dashboard does.
    rtm::HangStatus hang;
    for (int i = 0; i < 600; i++) {
        hang = mon.hangStatus();
        if (hang.hanging && hang.queueDrained)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(hang.hanging);
    EXPECT_TRUE(hang.queueDrained);

    // The per-component Tick button schedules into the live engine.
    ASSERT_FALSE(plat.components().empty());
    EXPECT_TRUE(mon.tickComponent(plat.components().back()->name()));
    EXPECT_FALSE(mon.tickComponent("NoSuchComponent"));

    plat.engine().stop();
    runner.join();
}

TEST(ParallelEngineRtm, PlatformRunMatchesSerialCompletion)
{
    // The parallel platform must complete the same workload; final
    // virtual time may differ from serial only through co-timed
    // arbitration, so compare completion status and sanity-check time.
    auto serialCfg = gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::Platform serialPlat(serialCfg);
    auto k1 = smallKernel(16);
    serialPlat.launchKernel(&k1);
    ASSERT_EQ(serialPlat.run(), gpu::Platform::RunStatus::Completed);

    auto parCfg = gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    parCfg.engineKind = gpu::EngineKind::Parallel;
    parCfg.workers = 2;
    gpu::Platform parPlat(parCfg);
    auto k2 = smallKernel(16);
    parPlat.launchKernel(&k2);
    ASSERT_EQ(parPlat.run(), gpu::Platform::RunStatus::Completed);

    EXPECT_GT(parPlat.engine().now(), 0u);
    EXPECT_GT(parPlat.engine().eventCount(), 0u);
}
