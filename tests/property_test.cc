/**
 * @file
 * Property-based tests: randomized sweeps over the substrate with
 * invariants that must hold for every input — message conservation,
 * monotonic time, cache accounting, parser totality (never crashes,
 * only accepts or rejects), and platform-shape robustness.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "gpu/platform.hh"
#include "json/json.hh"
#include "mem_harness.hh"
#include "mem/cache.hh"
#include "web/http.hh"
#include "workloads/workloads.hh"

using namespace akita;
using akita::test::FakeMemory;
using akita::test::Requester;

namespace
{

/** Deterministic xorshift PRNG so failures are reproducible. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed | 1) {}

    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

    std::uint64_t next(std::uint64_t bound) { return next() % bound; }

  private:
    std::uint64_t state_;
};

} // namespace

// ---------------------------------------------------------------------
// Engine properties
// ---------------------------------------------------------------------

class EngineSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineSeeds, TimeIsMonotonicAndAllEventsRun)
{
    Rng rng(GetParam());
    sim::SerialEngine eng;

    int fired = 0;
    sim::VTime last = 0;
    bool monotonic = true;
    const int n = 500;
    for (int i = 0; i < n; i++) {
        sim::VTime t = rng.next(100000);
        eng.scheduleAt(t, "e", [&, t]() {
            fired++;
            if (eng.now() < last)
                monotonic = false;
            last = eng.now();
            // Handlers may schedule follow-ups in the future.
            if (fired < n * 2 && rng.next(4) == 0) {
                eng.scheduleAt(eng.now() + 1 + rng.next(1000), "f",
                               [&]() { fired++; });
            }
        });
    }
    eng.run();
    EXPECT_TRUE(monotonic);
    EXPECT_GE(fired, n);
    EXPECT_EQ(eng.eventCount(), static_cast<std::uint64_t>(fired));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeeds,
                         ::testing::Values(1, 42, 12345, 987654321,
                                           0xdeadbeef));

// ---------------------------------------------------------------------
// Cache accounting properties
// ---------------------------------------------------------------------

struct CacheSweep
{
    std::size_t sets;
    std::size_t ways;
    std::size_t mshr;
    std::uint64_t seed;
};

class CacheProperties : public ::testing::TestWithParam<CacheSweep>
{
};

TEST_P(CacheProperties, ConservationAndAccounting)
{
    const CacheSweep p = GetParam();
    Rng rng(p.seed);

    sim::SerialEngine eng;
    Requester req(&eng, "Req");
    mem::Cache::Config cfg;
    cfg.numSets = p.sets;
    cfg.ways = p.ways;
    cfg.mshrCapacity = p.mshr;
    mem::Cache cache(&eng, "L1", sim::Freq::ghz(1), cfg);
    FakeMemory memory(&eng, "Mem", 10);
    mem::SinglePortMapper mapper(memory.top);
    cache.setMapper(&mapper);

    sim::DirectConnection top(&eng, "Top", sim::kNanosecond);
    sim::DirectConnection bottom(&eng, "Bottom", sim::kNanosecond);
    top.plugIn(req.out);
    top.plugIn(cache.topPort());
    bottom.plugIn(cache.bottomPort());
    bottom.plugIn(memory.top);

    const int n = 300;
    std::set<std::uint64_t> linesTouched;
    int reads = 0;
    for (int i = 0; i < n; i++) {
        std::uint64_t addr = rng.next(64) * 64 + rng.next(64);
        bool write = rng.next(4) == 0;
        if (!write) {
            reads++;
            linesTouched.insert(addr / 64);
        }
        req.enqueue(addr, write, cache.topPort());
    }
    req.tickLater();
    eng.run();

    // Conservation: every request answered exactly once.
    EXPECT_EQ(req.rspOrder.size(), static_cast<std::size_t>(n));
    std::set<std::uint64_t> uniq(req.rspOrder.begin(),
                                 req.rspOrder.end());
    EXPECT_EQ(uniq.size(), req.rspOrder.size());

    // Accounting: lookups = hits + misses; at least one cold miss per
    // distinct line; downstream fetches <= read misses.
    const auto &dir = cache.directory();
    EXPECT_EQ(dir.hits() + dir.misses(),
              static_cast<std::uint64_t>(reads));
    EXPECT_GE(dir.misses(), linesTouched.size());
    EXPECT_EQ(cache.transactionCount(), 0u) << "all MSHRs drained";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheProperties,
    ::testing::Values(CacheSweep{1, 1, 1, 7}, CacheSweep{1, 4, 2, 11},
                      CacheSweep{4, 2, 4, 13}, CacheSweep{16, 4, 16, 17},
                      CacheSweep{64, 8, 8, 19},
                      CacheSweep{2, 2, 32, 23}));

// ---------------------------------------------------------------------
// ROB ordering property under randomized completion order
// ---------------------------------------------------------------------

class RobSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RobSeeds, InOrderRetirementAlways)
{
    Rng rng(GetParam());
    sim::SerialEngine eng;
    Requester req(&eng, "Req");
    mem::ReorderBuffer rob(&eng, "ROB", sim::Freq::ghz(1), {});
    FakeMemory memory(&eng, "Mem", 3, /*lifo=*/true);
    sim::DirectConnection top(&eng, "Top", sim::kNanosecond);
    sim::DirectConnection bottom(&eng, "Bottom", sim::kNanosecond);
    top.plugIn(req.out);
    top.plugIn(rob.topPort());
    bottom.plugIn(rob.bottomPort());
    bottom.plugIn(memory.top);
    rob.setDownstream(memory.top);

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 100; i++) {
        ids.push_back(req.enqueue(rng.next(1 << 20), rng.next(3) == 0,
                                  rob.topPort()));
    }
    req.tickLater();
    eng.run();
    ASSERT_EQ(req.rspOrder.size(), ids.size());
    EXPECT_EQ(req.rspOrder, ids);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobSeeds,
                         ::testing::Values(3, 99, 4242, 31337));

// ---------------------------------------------------------------------
// Parser totality (fuzz): random input never crashes
// ---------------------------------------------------------------------

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSeeds, JsonParserTotality)
{
    Rng rng(GetParam());
    for (int round = 0; round < 300; round++) {
        std::string input;
        std::size_t len = rng.next(200);
        const char *alphabet = "{}[]\",:0123456789.eE+-truefalsn \\u\n";
        std::size_t alen = std::strlen(alphabet);
        for (std::size_t i = 0; i < len; i++)
            input.push_back(alphabet[rng.next(alen)]);
        try {
            json::Json parsed = json::Json::parse(input);
            // Accepted input must round-trip.
            EXPECT_EQ(parsed, json::Json::parse(parsed.dump()))
                << input;
        } catch (const json::ParseError &) {
            // Rejection is fine; crashing is not.
        }
    }
}

TEST_P(FuzzSeeds, HttpParserTotality)
{
    Rng rng(GetParam());
    for (int round = 0; round < 300; round++) {
        std::string input;
        std::size_t len = rng.next(300);
        for (std::size_t i = 0; i < len; i++)
            input.push_back(static_cast<char>(rng.next(256)));
        // Prefix some rounds with a plausible start to go deeper.
        if (rng.next(2) == 0)
            input = "GET /x HTTP/1.1\r\n" + input;
        web::Request parsed;
        std::size_t consumed = 0;
        web::ParseResult r = web::parseRequest(input, parsed, consumed);
        if (r == web::ParseResult::Ok) {
            EXPECT_LE(consumed, input.size());
            EXPECT_FALSE(parsed.method.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(5, 77, 2024, 555555));

// ---------------------------------------------------------------------
// Platform shape sweep
// ---------------------------------------------------------------------

struct ShapeSweep
{
    std::size_t numGpus;
    std::size_t sas;
    std::size_t cusPerSa;
    std::size_t l2Banks;
    std::size_t drams;
};

class PlatformShapes : public ::testing::TestWithParam<ShapeSweep>
{
};

TEST_P(PlatformShapes, AnyShapeCompletesMemCopy)
{
    const ShapeSweep p = GetParam();
    gpu::PlatformConfig cfg;
    cfg.numGpus = p.numGpus;
    cfg.gpu = gpu::GpuConfig::tiny();
    cfg.gpu.numSAs = p.sas;
    cfg.gpu.cusPerSA = p.cusPerSa;
    cfg.gpu.numL2Banks = p.l2Banks;
    cfg.gpu.numDramChannels = p.drams;

    gpu::Platform plat(cfg);
    workloads::MemCopyParams mp;
    mp.bytes = 1 << 18;
    auto k = workloads::makeMemCopy(mp);
    plat.launchKernel(&k);
    EXPECT_EQ(plat.run(), gpu::Platform::RunStatus::Completed)
        << p.numGpus << " GPUs, " << p.sas << "x" << p.cusPerSa;

    // The driver auto-stops the engine the moment the last kernel
    // completes, which can leave in-flight tail messages (progress
    // reports, final acks) queued. Drain them, then every buffer must
    // be empty.
    plat.run();

    // Post-quiescence invariant: every buffer empty.
    for (auto *c : plat.components()) {
        for (auto *b : c->buffers())
            EXPECT_EQ(b->size(), 0u) << b->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlatformShapes,
    ::testing::Values(ShapeSweep{1, 1, 1, 1, 1},
                      ShapeSweep{1, 2, 2, 2, 2},
                      ShapeSweep{2, 1, 2, 2, 1},
                      ShapeSweep{3, 2, 1, 1, 2},
                      ShapeSweep{4, 2, 2, 2, 2},
                      ShapeSweep{2, 4, 1, 4, 4}));

// ---------------------------------------------------------------------
// Workload trace sanity over many (wg, wf) pairs
// ---------------------------------------------------------------------

TEST(WorkloadProperty, AllTracesWellFormedEverywhere)
{
    Rng rng(2718);
    for (const auto &b : workloads::paperSuite(0.05)) {
        for (int i = 0; i < 50; i++) {
            auto wg = static_cast<std::uint32_t>(
                rng.next(b.kernel.numWorkGroups));
            auto wf = static_cast<std::uint32_t>(
                rng.next(b.kernel.wavefrontsPerWG));
            auto ops = b.kernel.trace(wg, wf);
            ASSERT_FALSE(ops.empty()) << b.name;
            for (const auto &op : ops) {
                if (op.hasMem()) {
                    EXPECT_GT(op.size, 0u) << b.name;
                    EXPECT_LE(op.size, 4096u) << b.name;
                    EXPECT_GT(op.addr, 0u) << b.name;
                }
            }
        }
    }
}
