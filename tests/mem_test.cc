/**
 * @file
 * Unit tests for the memory hierarchy: directory/TLB structures, the
 * reorder buffer, address translator, L1 cache (MSHR behavior), DRAM
 * controller, and the L2 cache's write-back path.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/l2cache.hh"
#include "mem/rob.hh"
#include "mem/translator.hh"
#include "mem_harness.hh"

using namespace akita;
using namespace akita::mem;
using akita::test::FakeMemory;
using akita::test::Requester;

// ---------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------

TEST(Directory, MissThenHit)
{
    Directory dir(4, 2, 64);
    EXPECT_FALSE(dir.lookup(0x100));
    bool ed;
    std::uint64_t va;
    dir.install(0x100, false, ed, va);
    EXPECT_TRUE(dir.lookup(0x100));
    EXPECT_TRUE(dir.lookup(0x13f)); // Same 64 B line.
    EXPECT_FALSE(dir.lookup(0x140)); // Next line.
    EXPECT_EQ(dir.hits(), 2u);
    EXPECT_EQ(dir.misses(), 2u);
}

TEST(Directory, LruEviction)
{
    Directory dir(1, 2, 64); // One set, two ways.
    bool ed;
    std::uint64_t va;
    dir.install(0x000, false, ed, va);
    dir.install(0x040, false, ed, va);
    dir.lookup(0x000); // Touch A: B becomes LRU.
    bool evicted = dir.install(0x080, false, ed, va);
    EXPECT_TRUE(evicted);
    EXPECT_TRUE(dir.lookup(0x000));
    EXPECT_FALSE(dir.lookup(0x040)); // B was evicted.
    EXPECT_TRUE(dir.lookup(0x080));
}

TEST(Directory, DirtyEvictionReportsVictimAddress)
{
    Directory dir(2, 1, 64); // Two sets, direct-mapped.
    bool ed;
    std::uint64_t va;
    dir.install(0x000, true, ed, va); // Set 0, dirty.
    // 0x080 maps to set 0 too (line 2 % 2 == 0).
    dir.install(0x080, false, ed, va);
    EXPECT_TRUE(ed);
    EXPECT_EQ(va, 0x000u);
}

TEST(Directory, PeekVictimMatchesInstall)
{
    Directory dir(2, 2, 64);
    bool ed;
    std::uint64_t va;
    dir.install(0x000, true, ed, va);
    dir.install(0x100, false, ed, va); // Same set 0 (line 4 % 2 == 0).

    bool peekDirty;
    std::uint64_t peekVa;
    bool wouldEvict = dir.peekVictim(0x200, peekDirty, peekVa);
    EXPECT_TRUE(wouldEvict);

    dir.install(0x200, false, ed, va);
    EXPECT_EQ(ed, peekDirty);
    EXPECT_EQ(va, peekVa);
}

TEST(Directory, PeekVictimNoEvictionWhenPresent)
{
    Directory dir(2, 2, 64);
    bool ed;
    std::uint64_t va;
    dir.install(0x000, false, ed, va);
    bool d;
    std::uint64_t v;
    EXPECT_FALSE(dir.peekVictim(0x000, d, v));
}

TEST(Directory, MarkDirtyAffectsEviction)
{
    Directory dir(1, 1, 64);
    bool ed;
    std::uint64_t va;
    dir.install(0x000, false, ed, va);
    dir.markDirty(0x020); // Same line.
    dir.install(0x040, false, ed, va);
    EXPECT_TRUE(ed);
}

// ---------------------------------------------------------------------
// TLB
// ---------------------------------------------------------------------

TEST(TlbTest, HitAfterInstall)
{
    Tlb tlb(4, 4096);
    EXPECT_FALSE(tlb.lookup(0x1000));
    tlb.install(0x1000);
    EXPECT_TRUE(tlb.lookup(0x1fff)); // Same page.
    EXPECT_FALSE(tlb.lookup(0x2000));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbTest, LruCapacity)
{
    Tlb tlb(2, 4096);
    tlb.install(0x0000);
    tlb.install(0x1000);
    EXPECT_TRUE(tlb.lookup(0x0000)); // Page 0 is now MRU.
    tlb.install(0x2000);             // Evicts page 1.
    EXPECT_TRUE(tlb.lookup(0x0000));
    EXPECT_FALSE(tlb.lookup(0x1000));
    EXPECT_TRUE(tlb.lookup(0x2000));
    EXPECT_EQ(tlb.occupancy(), 2u);
}

// ---------------------------------------------------------------------
// ReorderBuffer
// ---------------------------------------------------------------------

namespace
{

struct RobRig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req"};
    ReorderBuffer rob;
    FakeMemory memory;
    sim::DirectConnection top{&eng, "Top", sim::kNanosecond};
    sim::DirectConnection bottom{&eng, "Bottom", sim::kNanosecond};

    explicit RobRig(ReorderBuffer::Config cfg = {}, bool lifo = true)
        : rob(&eng, "ROB", sim::Freq::ghz(1), cfg),
          memory(&eng, "Mem", 4, lifo)
    {
        top.plugIn(req.out);
        top.plugIn(rob.topPort());
        bottom.plugIn(rob.bottomPort());
        bottom.plugIn(memory.top);
        rob.setDownstream(memory.top);
    }
};

} // namespace

TEST(ReorderBufferTest, RetiresInOrderDespiteOutOfOrderResponses)
{
    RobRig rig; // LIFO memory: responses come back reversed.
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 12; i++)
        ids.push_back(rig.req.enqueue(0x1000 + i * 64, false,
                                      rig.rob.topPort()));
    rig.req.tickLater();
    rig.eng.run();

    ASSERT_EQ(rig.req.rspOrder.size(), ids.size());
    EXPECT_EQ(rig.req.rspOrder, ids) << "must retire in program order";
    EXPECT_EQ(rig.rob.transactionCount(), 0u);
}

TEST(ReorderBufferTest, CapacityBoundsWindow)
{
    ReorderBuffer::Config cfg;
    cfg.capacity = 4;
    RobRig rig(cfg);
    for (int i = 0; i < 40; i++)
        rig.req.enqueue(0x2000 + i * 64, false, rig.rob.topPort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 40u);
}

TEST(ReorderBufferTest, WritesFlowThrough)
{
    RobRig rig;
    auto id = rig.req.enqueue(0x3000, true, rig.rob.topPort());
    rig.req.tickLater();
    rig.eng.run();
    ASSERT_EQ(rig.req.rspOrder.size(), 1u);
    EXPECT_EQ(rig.req.rspOrder[0], id);
}

TEST(ReorderBufferTest, TransactionsFieldVisible)
{
    RobRig rig;
    const auto *f = rig.rob.fields().find("transactions");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->getter().numeric(), 0.0);
}

// ---------------------------------------------------------------------
// AddressTranslator
// ---------------------------------------------------------------------

namespace
{

struct AtRig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req"};
    AddressTranslator at;
    FakeMemory memory;
    sim::DirectConnection top{&eng, "Top", sim::kNanosecond};
    sim::DirectConnection bottom{&eng, "Bottom", sim::kNanosecond};

    explicit AtRig(AddressTranslator::Config cfg = {})
        : at(&eng, "AT", sim::Freq::ghz(1), cfg),
          memory(&eng, "Mem", 2, false)
    {
        top.plugIn(req.out);
        top.plugIn(at.topPort());
        bottom.plugIn(at.bottomPort());
        bottom.plugIn(memory.top);
        at.setDownstream(memory.top);
    }
};

} // namespace

TEST(AddressTranslatorTest, TlbMissPaysWalkLatency)
{
    AddressTranslator::Config cfg;
    cfg.walkLatency = 50;
    AtRig rig(cfg);

    auto missId = rig.req.enqueue(0x10000, false, rig.at.topPort());
    rig.req.tickLater();
    rig.eng.run();

    auto hitId = rig.req.enqueue(0x10040, false, rig.at.topPort());
    rig.req.wake();
    rig.eng.run();

    ASSERT_EQ(rig.req.rspOrder.size(), 2u);
    sim::VTime missLat =
        rig.req.rspTimes[missId] - rig.req.sendTimes[missId];
    sim::VTime hitLat =
        rig.req.rspTimes[hitId] - rig.req.sendTimes[hitId];
    EXPECT_GT(missLat, hitLat + 40 * sim::kNanosecond);
    EXPECT_EQ(rig.at.tlb().misses(), 1u);
    EXPECT_EQ(rig.at.tlb().hits(), 1u);
}

TEST(AddressTranslatorTest, ReqsMarkedTranslated)
{
    AtRig rig;
    rig.req.enqueue(0x20000, false, rig.at.topPort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.memory.reqsSeen.size(), 1u);
}

TEST(AddressTranslatorTest, ManyPagesBoundedByWalkers)
{
    AddressTranslator::Config cfg;
    cfg.maxWalkers = 2;
    cfg.walkLatency = 30;
    AtRig rig(cfg);
    for (int i = 0; i < 16; i++)
        rig.req.enqueue(0x100000ull + i * 0x1000, false,
                        rig.at.topPort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 16u);
    EXPECT_EQ(rig.at.tlb().misses(), 16u);
    EXPECT_EQ(rig.at.transactionCount(), 0u);
}

// ---------------------------------------------------------------------
// L1 Cache
// ---------------------------------------------------------------------

namespace
{

struct CacheRig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req"};
    Cache cache;
    FakeMemory memory;
    SinglePortMapper mapper;
    sim::DirectConnection top{&eng, "Top", sim::kNanosecond};
    sim::DirectConnection bottom{&eng, "Bottom", sim::kNanosecond};

    explicit CacheRig(Cache::Config cfg = {},
                      std::uint64_t mem_delay = 20)
        : cache(&eng, "L1", sim::Freq::ghz(1), cfg),
          memory(&eng, "Mem", mem_delay, false), mapper(nullptr)
    {
        top.plugIn(req.out);
        top.plugIn(cache.topPort());
        bottom.plugIn(cache.bottomPort());
        bottom.plugIn(memory.top);
        mapper = SinglePortMapper(memory.top);
        cache.setMapper(&mapper);
    }
};

} // namespace

TEST(CacheTest, MissThenHitLatency)
{
    CacheRig rig;
    auto missId = rig.req.enqueue(0x4000, false, rig.cache.topPort());
    rig.req.tickLater();
    rig.eng.run();

    auto hitId = rig.req.enqueue(0x4004, false, rig.cache.topPort());
    rig.req.wake();
    rig.eng.run();

    sim::VTime missLat =
        rig.req.rspTimes[missId] - rig.req.sendTimes[missId];
    sim::VTime hitLat =
        rig.req.rspTimes[hitId] - rig.req.sendTimes[hitId];
    EXPECT_GT(missLat, hitLat);
    EXPECT_EQ(rig.cache.directory().hits(), 1u);
    EXPECT_EQ(rig.memory.reqsSeen.size(), 1u);
}

TEST(CacheTest, CoalescesSameLineMisses)
{
    CacheRig rig;
    for (int i = 0; i < 8; i++)
        rig.req.enqueue(0x5000 + i * 4, false, rig.cache.topPort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 8u);
    // All eight hit the same 64 B line: exactly one fetch downstream.
    EXPECT_EQ(rig.memory.reqsSeen.size(), 1u);
}

TEST(CacheTest, MshrLimitsOutstandingTransactions)
{
    Cache::Config cfg;
    cfg.mshrCapacity = 4;
    CacheRig rig(cfg, /*mem_delay=*/200);

    for (int i = 0; i < 32; i++)
        rig.req.enqueue(0x10000ull + i * 64, false,
                        rig.cache.topPort());
    rig.req.tickLater();

    // Observe the cap mid-flight via an engine probe.
    std::size_t maxSeen = 0;
    std::function<void()> probe = [&]() {
        maxSeen = std::max(maxSeen, rig.cache.transactionCount());
        if (rig.eng.queueLength() > 0 &&
            rig.req.rspOrder.size() < 32)
            rig.eng.scheduleAt(rig.eng.now() + sim::kNanosecond,
                               "probe", probe);
    };
    rig.eng.scheduleAt(1, "probe", probe);
    rig.eng.run();

    EXPECT_EQ(rig.req.rspOrder.size(), 32u);
    EXPECT_LE(maxSeen, 4u);
    EXPECT_GE(maxSeen, 3u) << "MSHR should saturate under load";
}

TEST(CacheTest, WriteThroughForwardsWrites)
{
    CacheRig rig;
    rig.req.enqueue(0x6000, true, rig.cache.topPort());
    rig.req.enqueue(0x6004, true, rig.cache.topPort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 2u);
    EXPECT_EQ(rig.memory.reqsSeen.size(), 2u); // No write combining.
}

TEST(CacheTest, EvictionKeepsServingCorrectly)
{
    Cache::Config cfg;
    cfg.numSets = 1;
    cfg.ways = 2;
    CacheRig rig(cfg);
    // Touch 4 distinct lines mapping to the single set, then re-touch.
    for (int round = 0; round < 2; round++) {
        for (int i = 0; i < 4; i++)
            rig.req.enqueue(0x8000ull + i * 64, false,
                            rig.cache.topPort());
    }
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 8u);
    EXPECT_GE(rig.memory.reqsSeen.size(), 4u);
}

// ---------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------

namespace
{

struct DramRig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req"};
    DramController dram;
    sim::DirectConnection conn{&eng, "Conn", sim::kNanosecond};

    explicit DramRig(DramController::Config cfg = {})
        : dram(&eng, "DRAM", sim::Freq::ghz(1), cfg)
    {
        conn.plugIn(req.out);
        conn.plugIn(dram.topPort());
    }
};

} // namespace

TEST(DramTest, AccessLatencyApplied)
{
    DramController::Config cfg;
    cfg.accessLatency = 100;
    DramRig rig(cfg);
    auto id = rig.req.enqueue(0x1000, false, rig.dram.topPort());
    rig.req.tickLater();
    rig.eng.run();
    ASSERT_EQ(rig.req.rspOrder.size(), 1u);
    sim::VTime lat = rig.req.rspTimes[id] - rig.req.sendTimes[id];
    EXPECT_GE(lat, 100 * sim::kNanosecond);
    EXPECT_LT(lat, 120 * sim::kNanosecond);
}

TEST(DramTest, BandwidthThrottlesAdmission)
{
    DramController::Config slow;
    slow.reqPerCycle = 1;
    DramController::Config fast;
    fast.reqPerCycle = 8;

    sim::VTime slowDone, fastDone;
    for (auto *pair : {&slowDone, &fastDone}) {
        DramRig rig(pair == &slowDone ? slow : fast);
        for (int i = 0; i < 64; i++)
            rig.req.enqueue(0x1000 + i * 64, false,
                            rig.dram.topPort());
        rig.req.tickLater();
        rig.eng.run();
        EXPECT_EQ(rig.req.rspOrder.size(), 64u);
        *pair = rig.eng.now();
    }
    EXPECT_GT(slowDone, fastDone);
}

TEST(DramTest, CountsReadsAndWrites)
{
    DramRig rig;
    rig.req.enqueue(0x0, false, rig.dram.topPort());
    rig.req.enqueue(0x40, true, rig.dram.topPort());
    rig.req.enqueue(0x80, true, rig.dram.topPort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.dram.totalReads(), 1u);
    EXPECT_EQ(rig.dram.totalWrites(), 2u);
}

// ---------------------------------------------------------------------
// L2 Cache (write-back path; the deadlock itself is covered in
// l2_deadlock_test.cc)
// ---------------------------------------------------------------------

namespace
{

struct L2Rig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req"};
    L2Cache l2;
    DramController dram;
    sim::DirectConnection top{&eng, "Top", sim::kNanosecond};
    sim::DirectConnection bottom{&eng, "Bottom", sim::kNanosecond};

    explicit L2Rig(L2Cache::Config cfg = {})
        : l2(&eng, "L2", sim::Freq::ghz(1), cfg),
          dram(&eng, "DRAM", sim::Freq::ghz(1), {})
    {
        top.plugIn(req.out);
        top.plugIn(l2.topPort());
        bottom.plugIn(l2.bottomPort());
        bottom.plugIn(l2.wbPort());
        bottom.plugIn(dram.topPort());
        l2.setDownstream(dram.topPort());
    }
};

} // namespace

TEST(L2CacheTest, ReadMissFillsAndHits)
{
    L2Rig rig;
    auto missId = rig.req.enqueue(0x9000, false, rig.l2.topPort());
    rig.req.tickLater();
    rig.eng.run();
    auto hitId = rig.req.enqueue(0x9008, false, rig.l2.topPort());
    rig.req.wake();
    rig.eng.run();

    sim::VTime missLat =
        rig.req.rspTimes[missId] - rig.req.sendTimes[missId];
    sim::VTime hitLat =
        rig.req.rspTimes[hitId] - rig.req.sendTimes[hitId];
    EXPECT_GT(missLat, hitLat);
}

TEST(L2CacheTest, WriteAllocateMarksDirtyAndWritesBack)
{
    L2Cache::Config cfg;
    cfg.numSets = 1;
    cfg.ways = 2;
    L2Rig rig(cfg);

    // Write to 2 lines (fills + dirty), then read 2 more lines mapping
    // to the same set to force dirty evictions.
    rig.req.enqueue(0xA000, true, rig.l2.topPort());
    rig.req.enqueue(0xA040, true, rig.l2.topPort());
    rig.req.tickLater();
    rig.eng.run();

    rig.req.enqueue(0xA080, false, rig.l2.topPort());
    rig.req.enqueue(0xA0C0, false, rig.l2.topPort());
    rig.req.wake();
    rig.eng.run();

    EXPECT_EQ(rig.req.rspOrder.size(), 4u);
    EXPECT_GE(rig.dram.totalWrites(), 2u) << "dirty lines written back";
}

TEST(L2CacheTest, CoalescesReadsAndWritesToSameLine)
{
    L2Rig rig;
    rig.req.enqueue(0xB000, false, rig.l2.topPort());
    rig.req.enqueue(0xB004, true, rig.l2.topPort());
    rig.req.enqueue(0xB008, false, rig.l2.topPort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 3u);
    EXPECT_EQ(rig.dram.totalReads(), 1u) << "one fill for the line";
}
