/**
 * @file
 * Unit tests for the simulation core: time, frequencies, the event
 * queue, and the serial engine (including pause/resume, stop,
 * wait-when-empty, and concurrent access).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/engine.hh"
#include "sim/event.hh"
#include "sim/time.hh"

using namespace akita::sim;

TEST(Time, Constants)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kSecond, 1000000000000ull);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(toSeconds(kMillisecond), 1e-3);
}

TEST(Time, Format)
{
    EXPECT_EQ(formatTime(500), "500 ps");
    EXPECT_EQ(formatTime(1500), "1.500 ns");
    EXPECT_EQ(formatTime(2 * kMicrosecond), "2.000 us");
    EXPECT_EQ(formatTime(3 * kMillisecond), "3.000 ms");
    EXPECT_EQ(formatTime(kSecond), "1.000000 s");
}

TEST(Freq, GhzPeriod)
{
    EXPECT_EQ(Freq::ghz(1).period(), 1000u);
    EXPECT_EQ(Freq::ghz(2).period(), 500u);
    EXPECT_EQ(Freq::mhz(500).period(), 2000u);
    EXPECT_DOUBLE_EQ(Freq::ghz(1).hz(), 1e9);
}

TEST(Freq, TickAlignment)
{
    Freq f = Freq::ghz(1); // 1000 ps period.
    EXPECT_EQ(f.thisTick(0), 0u);
    EXPECT_EQ(f.thisTick(999), 0u);
    EXPECT_EQ(f.thisTick(1000), 1000u);
    EXPECT_EQ(f.nextTick(0), 1000u);
    EXPECT_EQ(f.nextTick(1000), 2000u);
    EXPECT_EQ(f.nextTick(1001), 2000u);
    EXPECT_EQ(f.nCyclesLater(1500, 3), 4000u);
    EXPECT_EQ(f.cycles(5500), 5u);
}

TEST(Freq, ZeroSafe)
{
    EXPECT_GE(Freq::ghz(0).period(), 1u);
    EXPECT_GE(Freq::mhz(0).period(), 1u);
    EXPECT_GE(Freq::fromPeriod(0).period(), 1u);
}

namespace
{

class Recorder : public EventHandler
{
  public:
    void handle(Event &e) override { times.push_back(e.time()); }

    std::string handlerName() const override { return "Recorder"; }

    std::vector<VTime> times;
};

} // namespace

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    Recorder r;
    q.push(std::make_unique<Event>(30, &r));
    q.push(std::make_unique<Event>(10, &r));
    q.push(std::make_unique<Event>(20, &r));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop()->time(), 10u);
    EXPECT_EQ(q.pop()->time(), 20u);
    EXPECT_EQ(q.pop()->time(), 30u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; i++) {
        q.push(std::make_unique<FuncEvent>(
            100, "f", [&order, i]() { order.push_back(i); }));
    }
    while (!q.empty()) {
        EventPtr e = q.pop();
        e->handler()->handle(*e);
    }
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SecondaryAfterPrimary)
{
    EventQueue q;
    std::vector<char> order;
    q.push(std::make_unique<FuncEvent>(
        100, "s", [&order]() { order.push_back('s'); }, true));
    q.push(std::make_unique<FuncEvent>(
        100, "p", [&order]() { order.push_back('p'); }, false));
    while (!q.empty()) {
        EventPtr e = q.pop();
        e->handler()->handle(*e);
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 'p');
    EXPECT_EQ(order[1], 's');
}

TEST(EventQueue, StressOrderingProperty)
{
    // Pseudo-random times must come out sorted.
    EventQueue q;
    Recorder r;
    std::uint64_t state = 12345;
    for (int i = 0; i < 2000; i++) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        q.push(std::make_unique<Event>(state % 1000, &r));
    }
    VTime prev = 0;
    while (!q.empty()) {
        VTime t = q.pop()->time();
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(SerialEngine, RunsEventsInOrder)
{
    SerialEngine eng;
    std::vector<VTime> seen;
    for (VTime t : {400u, 100u, 300u, 200u}) {
        eng.scheduleAt(t, "t", [&seen, &eng]() {
            seen.push_back(eng.now());
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Drained);
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen, (std::vector<VTime>{100, 200, 300, 400}));
    EXPECT_EQ(eng.now(), 400u);
    EXPECT_EQ(eng.eventCount(), 4u);
}

TEST(SerialEngine, HandlersCanScheduleMoreEvents)
{
    SerialEngine eng;
    int fired = 0;
    std::function<void()> chain = [&]() {
        fired++;
        if (fired < 10)
            eng.scheduleAt(eng.now() + 10, "chain", chain);
    };
    eng.scheduleAt(0, "chain", chain);
    eng.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eng.now(), 90u);
}

TEST(SerialEngine, SchedulingInPastThrows)
{
    SerialEngine eng;
    eng.scheduleAt(100, "x", []() {});
    eng.run();
    EXPECT_THROW(eng.scheduleAt(50, "late", []() {}),
                 std::runtime_error);
    // Scheduling at exactly now() is allowed.
    EXPECT_NO_THROW(eng.scheduleAt(100, "now", []() {}));
}

TEST(SerialEngine, StopAbortsRun)
{
    SerialEngine eng;
    int fired = 0;
    for (int i = 1; i <= 100; i++) {
        eng.scheduleAt(static_cast<VTime>(i * 10), "n", [&]() {
            fired++;
            if (fired == 5)
                eng.stop();
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Stopped);
    EXPECT_EQ(fired, 5);
    // A later run (after the implicit stop-flag reset) continues.
    EXPECT_EQ(eng.run(), RunResult::Drained);
    EXPECT_EQ(fired, 100);
}

TEST(SerialEngine, PauseAndResumeFromAnotherThread)
{
    SerialEngine eng;
    eng.setConcurrentAccess(true);

    std::atomic<int> fired{0};
    std::function<void()> chain = [&]() {
        fired++;
        if (fired < 10000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });

    // Pause mid-run, observe that progress stops.
    while (fired.load() < 100)
        std::this_thread::yield();
    eng.pause();
    while (!eng.paused() || false)
        break;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    int atPause = fired.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // At most one in-flight event finishes after pause.
    EXPECT_LE(fired.load(), atPause + 1);

    eng.resume();
    runner.join();
    EXPECT_EQ(fired.load(), 10000);
}

TEST(SerialEngine, WaitWhenEmptyBlocksAndExternalScheduleRevives)
{
    SerialEngine eng;
    eng.setConcurrentAccess(true);
    eng.setWaitWhenEmpty(true);

    std::atomic<int> fired{0};
    eng.scheduleAt(10, "a", [&]() { fired++; });

    std::thread runner([&]() { eng.run(); });

    while (fired.load() < 1)
        std::this_thread::yield();
    // Queue drained; engine must block rather than return.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(eng.running());
    EXPECT_TRUE(eng.drainedWaiting());

    // The RTM "Tick"/kick-start path: an external schedule revives it.
    eng.scheduleAt(eng.now() + 5, "b", [&]() {
        fired++;
        eng.stop();
    });
    runner.join();
    EXPECT_EQ(fired.load(), 2);
}

TEST(SerialEngine, WithLockGivesConsistentSnapshots)
{
    SerialEngine eng;
    eng.setConcurrentAccess(true);

    // Two counters incremented in the same event must never be observed
    // out of sync under the lock.
    std::int64_t a = 0, b = 0;
    std::function<void()> chain = [&]() {
        a++;
        b++;
        if (a < 20000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });
    for (int i = 0; i < 200; i++) {
        eng.withLock([&]() { EXPECT_EQ(a, b); });
    }
    runner.join();
    EXPECT_EQ(a, 20000);
}

TEST(SerialEngine, HooksInvokedAroundEvents)
{
    class CountingHook : public Hook
    {
      public:
        void
        func(HookCtx &ctx) override
        {
            if (ctx.pos == &hookPosBeforeEvent)
                before++;
            if (ctx.pos == &hookPosAfterEvent)
                after++;
            if (ctx.pos == &hookPosQueueDrained)
                drained++;
        }

        int before = 0, after = 0, drained = 0;
    };

    SerialEngine eng;
    CountingHook hook;
    eng.acceptHook(&hook);
    for (int i = 0; i < 7; i++)
        eng.scheduleAt(static_cast<VTime>(i), "e", []() {});
    eng.run();
    EXPECT_EQ(hook.before, 7);
    EXPECT_EQ(hook.after, 7);
    EXPECT_EQ(hook.drained, 1);
}

TEST(SerialEngine, InspectableFields)
{
    SerialEngine eng;
    eng.scheduleAt(5, "e", []() {});
    const auto &fields = eng.fields();
    EXPECT_NE(fields.find("now_ps"), nullptr);
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 1);
    eng.run();
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 0);
    EXPECT_EQ(fields.find("total_events")->getter().intVal(), 1);
    EXPECT_EQ(fields.find("now_ps")->getter().intVal(), 5);
}

TEST(FuncEvent, CarriesNameForProfiler)
{
    FuncEvent e(0, "MyHandler", []() {});
    EXPECT_EQ(e.handlerName(), "MyHandler");
}
