/**
 * @file
 * Unit tests for the simulation core: time, frequencies, the event
 * queue, and the serial engine (including pause/resume, stop,
 * wait-when-empty, and concurrent access).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/component.hh"
#include "sim/engine.hh"
#include "sim/event.hh"
#include "sim/time.hh"

using namespace akita::sim;

TEST(Time, Constants)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kSecond, 1000000000000ull);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(toSeconds(kMillisecond), 1e-3);
}

TEST(Time, Format)
{
    EXPECT_EQ(formatTime(500), "500 ps");
    EXPECT_EQ(formatTime(1500), "1.500 ns");
    EXPECT_EQ(formatTime(2 * kMicrosecond), "2.000 us");
    EXPECT_EQ(formatTime(3 * kMillisecond), "3.000 ms");
    EXPECT_EQ(formatTime(kSecond), "1.000000 s");
}

TEST(Freq, GhzPeriod)
{
    EXPECT_EQ(Freq::ghz(1).period(), 1000u);
    EXPECT_EQ(Freq::ghz(2).period(), 500u);
    EXPECT_EQ(Freq::mhz(500).period(), 2000u);
    EXPECT_DOUBLE_EQ(Freq::ghz(1).hz(), 1e9);
}

TEST(Freq, TickAlignment)
{
    Freq f = Freq::ghz(1); // 1000 ps period.
    EXPECT_EQ(f.thisTick(0), 0u);
    EXPECT_EQ(f.thisTick(999), 0u);
    EXPECT_EQ(f.thisTick(1000), 1000u);
    EXPECT_EQ(f.nextTick(0), 1000u);
    EXPECT_EQ(f.nextTick(1000), 2000u);
    EXPECT_EQ(f.nextTick(1001), 2000u);
    EXPECT_EQ(f.nCyclesLater(1500, 3), 4000u);
    EXPECT_EQ(f.cycles(5500), 5u);
}

TEST(Freq, ZeroSafe)
{
    EXPECT_GE(Freq::ghz(0).period(), 1u);
    EXPECT_GE(Freq::mhz(0).period(), 1u);
    EXPECT_GE(Freq::fromPeriod(0).period(), 1u);
}

namespace
{

class Recorder : public EventHandler
{
  public:
    void handle(Event &e) override { times.push_back(e.time()); }

    std::string handlerName() const override { return "Recorder"; }

    std::vector<VTime> times;
};

} // namespace

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    Recorder r;
    q.push(std::make_unique<Event>(30, &r));
    q.push(std::make_unique<Event>(10, &r));
    q.push(std::make_unique<Event>(20, &r));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop()->time(), 10u);
    EXPECT_EQ(q.pop()->time(), 20u);
    EXPECT_EQ(q.pop()->time(), 30u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; i++) {
        q.push(std::make_unique<FuncEvent>(
            100, "f", [&order, i]() { order.push_back(i); }));
    }
    while (!q.empty()) {
        EventPtr e = q.pop();
        e->handler()->handle(*e);
    }
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SecondaryAfterPrimary)
{
    EventQueue q;
    std::vector<char> order;
    q.push(std::make_unique<FuncEvent>(
        100, "s", [&order]() { order.push_back('s'); }, true));
    q.push(std::make_unique<FuncEvent>(
        100, "p", [&order]() { order.push_back('p'); }, false));
    while (!q.empty()) {
        EventPtr e = q.pop();
        e->handler()->handle(*e);
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 'p');
    EXPECT_EQ(order[1], 's');
}

TEST(EventQueue, StressOrderingProperty)
{
    // Pseudo-random times must come out sorted.
    EventQueue q;
    Recorder r;
    std::uint64_t state = 12345;
    for (int i = 0; i < 2000; i++) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        q.push(std::make_unique<Event>(state % 1000, &r));
    }
    VTime prev = 0;
    while (!q.empty()) {
        VTime t = q.pop()->time();
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(SerialEngine, RunsEventsInOrder)
{
    SerialEngine eng;
    std::vector<VTime> seen;
    for (VTime t : {400u, 100u, 300u, 200u}) {
        eng.scheduleAt(t, "t", [&seen, &eng]() {
            seen.push_back(eng.now());
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Drained);
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen, (std::vector<VTime>{100, 200, 300, 400}));
    EXPECT_EQ(eng.now(), 400u);
    EXPECT_EQ(eng.eventCount(), 4u);
}

TEST(SerialEngine, HandlersCanScheduleMoreEvents)
{
    SerialEngine eng;
    int fired = 0;
    std::function<void()> chain = [&]() {
        fired++;
        if (fired < 10)
            eng.scheduleAt(eng.now() + 10, "chain", chain);
    };
    eng.scheduleAt(0, "chain", chain);
    eng.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eng.now(), 90u);
}

TEST(SerialEngine, SchedulingInPastThrows)
{
    SerialEngine eng;
    eng.scheduleAt(100, "x", []() {});
    eng.run();
    EXPECT_THROW(eng.scheduleAt(50, "late", []() {}),
                 std::runtime_error);
    // Scheduling at exactly now() is allowed.
    EXPECT_NO_THROW(eng.scheduleAt(100, "now", []() {}));
}

TEST(SerialEngine, StopAbortsRun)
{
    SerialEngine eng;
    int fired = 0;
    for (int i = 1; i <= 100; i++) {
        eng.scheduleAt(static_cast<VTime>(i * 10), "n", [&]() {
            fired++;
            if (fired == 5)
                eng.stop();
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Stopped);
    EXPECT_EQ(fired, 5);
    // A later run (after the implicit stop-flag reset) continues.
    EXPECT_EQ(eng.run(), RunResult::Drained);
    EXPECT_EQ(fired, 100);
}

TEST(SerialEngine, PauseAndResumeFromAnotherThread)
{
    SerialEngine eng;
    eng.setConcurrentAccess(true);

    std::atomic<int> fired{0};
    std::function<void()> chain = [&]() {
        fired++;
        if (fired < 10000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });

    // Pause mid-run, observe that progress stops.
    while (fired.load() < 100)
        std::this_thread::yield();
    eng.pause();
    while (!eng.paused() || false)
        break;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    int atPause = fired.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // At most one in-flight event finishes after pause.
    EXPECT_LE(fired.load(), atPause + 1);

    eng.resume();
    runner.join();
    EXPECT_EQ(fired.load(), 10000);
}

TEST(SerialEngine, WaitWhenEmptyBlocksAndExternalScheduleRevives)
{
    SerialEngine eng;
    eng.setConcurrentAccess(true);
    eng.setWaitWhenEmpty(true);

    std::atomic<int> fired{0};
    eng.scheduleAt(10, "a", [&]() { fired++; });

    std::thread runner([&]() { eng.run(); });

    while (fired.load() < 1)
        std::this_thread::yield();
    // Queue drained; engine must block rather than return.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(eng.running());
    EXPECT_TRUE(eng.drainedWaiting());

    // The RTM "Tick"/kick-start path: an external schedule revives it.
    eng.scheduleAt(eng.now() + 5, "b", [&]() {
        fired++;
        eng.stop();
    });
    runner.join();
    EXPECT_EQ(fired.load(), 2);
}

TEST(SerialEngine, WithLockGivesConsistentSnapshots)
{
    SerialEngine eng;
    eng.setConcurrentAccess(true);

    // Two counters incremented in the same event must never be observed
    // out of sync under the lock.
    std::int64_t a = 0, b = 0;
    std::function<void()> chain = [&]() {
        a++;
        b++;
        if (a < 20000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });
    for (int i = 0; i < 200; i++) {
        eng.withLock([&]() { EXPECT_EQ(a, b); });
    }
    runner.join();
    EXPECT_EQ(a, 20000);
}

TEST(SerialEngine, HooksInvokedAroundEvents)
{
    class CountingHook : public Hook
    {
      public:
        void
        func(HookCtx &ctx) override
        {
            if (ctx.pos == &hookPosBeforeEvent)
                before++;
            if (ctx.pos == &hookPosAfterEvent)
                after++;
            if (ctx.pos == &hookPosQueueDrained)
                drained++;
        }

        int before = 0, after = 0, drained = 0;
    };

    SerialEngine eng;
    CountingHook hook;
    eng.acceptHook(&hook);
    for (int i = 0; i < 7; i++)
        eng.scheduleAt(static_cast<VTime>(i), "e", []() {});
    eng.run();
    EXPECT_EQ(hook.before, 7);
    EXPECT_EQ(hook.after, 7);
    EXPECT_EQ(hook.drained, 1);
}

TEST(SerialEngine, InspectableFields)
{
    SerialEngine eng;
    eng.scheduleAt(5, "e", []() {});
    const auto &fields = eng.fields();
    EXPECT_NE(fields.find("now_ps"), nullptr);
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 1);
    eng.run();
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 0);
    EXPECT_EQ(fields.find("total_events")->getter().intVal(), 1);
    EXPECT_EQ(fields.find("now_ps")->getter().intVal(), 5);
}

TEST(FuncEvent, CarriesNameForProfiler)
{
    FuncEvent e(0, "MyHandler", []() {});
    EXPECT_EQ(e.handlerName(), "MyHandler");
}

// ---- Ordering invariants of the two-level queue (PR: parallel engine) ----

TEST(EventQueue, FifoPreservedAcrossInterleavedPushPop)
{
    // Pops interleaved with pushes at the same timestamp must still
    // return the events in scheduling order.
    EventQueue q;
    std::vector<int> order;
    auto mk = [&order](int i) {
        return std::make_unique<FuncEvent>(
            50, "f", [&order, i]() { order.push_back(i); });
    };
    q.push(mk(0));
    q.push(mk(1));
    EventPtr e = q.pop();
    e->handler()->handle(*e);
    q.push(mk(2));
    q.push(mk(3));
    while (!q.empty()) {
        e = q.pop();
        e->handler()->handle(*e);
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SecondaryAfterPrimaryWithInterleavedPushes)
{
    // A primary pushed *after* a co-timed secondary still pops first,
    // even when the secondary phase was pushed across several calls.
    EventQueue q;
    std::vector<std::string> order;
    auto mk = [&order, &q](const std::string &tag, bool secondary) {
        q.push(std::make_unique<FuncEvent>(
            70, tag, [&order, tag]() { order.push_back(tag); },
            secondary));
    };
    mk("s0", true);
    mk("p0", false);
    mk("s1", true);
    mk("p1", false);
    EventPtr e = q.pop();
    e->handler()->handle(*e); // p0
    mk("p2", false);          // Pushed mid-drain, same time, primary.
    while (!q.empty()) {
        e = q.pop();
        e->handler()->handle(*e);
    }
    EXPECT_EQ(order, (std::vector<std::string>{"p0", "p1", "p2", "s0",
                                               "s1"}));
}

TEST(EventQueue, PopCohortReturnsCoTimedPrimariesInFifoOrder)
{
    EventQueue q;
    Recorder r1, r2;
    q.push(std::make_unique<Event>(10, &r1));
    q.push(std::make_unique<Event>(10, &r2));
    q.push(std::make_unique<Event>(10, &r1));
    q.push(std::make_unique<Event>(20, &r2));

    std::vector<EventPtr> cohort;
    EXPECT_EQ(q.popCohort(cohort), 3u);
    ASSERT_EQ(cohort.size(), 3u);
    EXPECT_EQ(cohort[0]->handler(), &r1);
    EXPECT_EQ(cohort[1]->handler(), &r2);
    EXPECT_EQ(cohort[2]->handler(), &r1);
    for (const auto &ev : cohort)
        EXPECT_EQ(ev->time(), 10u);
    EXPECT_EQ(q.size(), 1u);

    cohort.clear();
    EXPECT_EQ(q.popCohort(cohort), 1u);
    EXPECT_EQ(cohort[0]->time(), 20u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.popCohort(cohort), 0u);
}

TEST(EventQueue, PopCohortSplitsPhasesAtOneTime)
{
    EventQueue q;
    Recorder r;
    q.push(std::make_unique<Event>(5, &r, true)); // secondary
    q.push(std::make_unique<Event>(5, &r, false));
    q.push(std::make_unique<Event>(5, &r, true));

    std::vector<EventPtr> cohort;
    EXPECT_EQ(q.popCohort(cohort), 1u); // primary phase first
    EXPECT_FALSE(cohort[0]->isSecondary());

    cohort.clear();
    EXPECT_EQ(q.popCohort(cohort), 2u); // then both secondaries
    EXPECT_TRUE(cohort[0]->isSecondary());
    EXPECT_TRUE(cohort[1]->isSecondary());
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopCohortExcludesEventsPushedDuringExecution)
{
    // Events scheduled at the cohort's own timestamp *after* the cohort
    // popped must land in a later cohort, not the in-flight one.
    EventQueue q;
    Recorder r;
    q.push(std::make_unique<Event>(10, &r));
    std::vector<EventPtr> cohort;
    EXPECT_EQ(q.popCohort(cohort), 1u);
    q.push(std::make_unique<Event>(10, &r));
    EXPECT_EQ(q.size(), 1u);
    std::vector<EventPtr> next;
    EXPECT_EQ(q.popCohort(next), 1u);
    EXPECT_EQ(next[0]->time(), 10u);
}

TEST(EventQueue, MixedPopAndPopCohort)
{
    EventQueue q;
    Recorder r;
    for (VTime t : {30u, 10u, 10u, 20u, 10u})
        q.push(std::make_unique<Event>(t, &r));
    EXPECT_EQ(q.peekTime(), 10u);
    EXPECT_EQ(q.pop()->time(), 10u);
    std::vector<EventPtr> cohort;
    EXPECT_EQ(q.popCohort(cohort), 2u); // Remaining t=10 events.
    EXPECT_EQ(q.peekTime(), 20u);
    EXPECT_EQ(q.pop()->time(), 20u);
    cohort.clear();
    EXPECT_EQ(q.popCohort(cohort), 1u);
    EXPECT_EQ(cohort[0]->time(), 30u);
    EXPECT_TRUE(q.empty());
}

// ---- Satellite fixes: schedule() race and withLock() starvation ----

TEST(SerialEngine, CrossThreadScheduleNeverLandsInPast)
{
    // Hammer cross-thread schedules while the engine advances time; the
    // past-check under the lock must make every accepted event legal and
    // every illegal event throw (instead of corrupting the queue).
    SerialEngine eng;
    eng.setConcurrentAccess(true);
    eng.setWaitWhenEmpty(true);

    std::atomic<bool> done{false};
    std::function<void()> chain = [&]() {
        if (eng.now() < 200000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
        else
            done.store(true);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });

    std::atomic<int> accepted{0}, rejected{0};
    std::thread scheduler([&]() {
        while (!done.load()) {
            // Deliberately racy target: time may advance past it
            // between the read and the schedule call.
            VTime target = eng.now() + 2;
            try {
                eng.scheduleAt(target, "ext", []() {});
                accepted++;
            } catch (const std::runtime_error &) {
                rejected++;
            }
        }
    });

    scheduler.join();
    eng.stop();
    runner.join();
    EXPECT_GT(accepted.load(), 0);
    // The key assertion is implicit: no crash, no event executed out of
    // order (the engine would throw from its own pop path otherwise).
}

TEST(SerialEngine, WithLockNotStarvedByBusyEventLoop)
{
    // Regression for monitor starvation: with a hot event loop and a
    // large batch size, a withLock() caller must still get the lock in
    // bounded time (the loop yields to announced waiters between
    // batches).
    SerialEngine eng;
    eng.setConcurrentAccess(true);
    eng.setLockBatch(4096);

    std::atomic<bool> done{false};
    std::function<void()> chain = [&]() {
        if (!done.load())
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });

    int completed = 0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 50; i++) {
        eng.withLock([&completed]() { completed++; });
    }
    auto elapsed = std::chrono::steady_clock::now() - start;

    done.store(true);
    eng.withLock([]() {}); // Ensure the chain sees the flag.
    runner.join();

    EXPECT_EQ(completed, 50);
    // Generous bound: 50 acquisitions must not take anywhere near
    // seconds. Pre-fix, each could wait for the whole queue to drain.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  elapsed)
                  .count(),
              5000);
}

TEST(TickingComponent, DeadlineSurvivesSameCycleWakeRearm)
{
    // Regression: scheduleTickAt used to suppress a LATER target when an
    // earlier tick was pending. A wake arming next-cycle between the
    // handler clearing its flag and tick() arming a service deadline
    // would swallow the deadline event: the next-cycle tick finds no
    // work, sleeps, and the component freezes mid-service. The dedup
    // must only absorb exact-time duplicates.
    SerialEngine eng;

    class DeadlineComp : public TickingComponent
    {
      public:
        explicit DeadlineComp(Engine *e)
            : TickingComponent(e, "DL", Freq::ghz(1))
        {
        }
        std::vector<VTime> tickTimes;
        bool
        tick() override
        {
            tickTimes.push_back(engine()->now());
            return false; // Never re-arms on its own.
        }
    } comp(&eng);

    // Interleaving forced deterministically: wake (next cycle) first,
    // then the deadline five cycles out — the order the race produces.
    comp.wake();                                     // t = 1 cycle
    comp.scheduleTickAt(6 * Freq::ghz(1).period()); // the deadline
    eng.run();

    ASSERT_EQ(comp.tickTimes.size(), 2u);
    EXPECT_EQ(comp.tickTimes[0], Freq::ghz(1).period());
    EXPECT_EQ(comp.tickTimes[1], 6 * Freq::ghz(1).period());
}
