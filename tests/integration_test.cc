/**
 * @file
 * Cross-module integration tests: full workloads on the platform with
 * conservation and consistency properties, monitored and unmonitored.
 */

#include <gtest/gtest.h>

#include <thread>

#include "gpu/platform.hh"
#include "rtm/monitor.hh"
#include "workloads/workloads.hh"

using namespace akita;

namespace
{

struct RunOutcome
{
    gpu::Platform::RunStatus status;
    sim::VTime finalTime;
    std::uint64_t events;
    std::uint64_t memReqs;
};

RunOutcome
runBench(const workloads::Benchmark &bench, std::size_t num_gpus,
         bool monitored)
{
    gpu::PlatformConfig cfg;
    cfg.numGpus = num_gpus;
    cfg.gpu = gpu::GpuConfig::tiny();
    gpu::Platform plat(cfg);

    std::unique_ptr<rtm::Monitor> mon;
    if (monitored) {
        rtm::MonitorConfig mc;
        mc.announceUrl = false;
        mon = std::make_unique<rtm::Monitor>(mc);
        mon->registerEngine(&plat.engine());
        for (auto *c : plat.components())
            mon->registerComponent(c);
        plat.driver().setProgressListener(mon.get());
    }

    // Copy the kernel so each run owns one (descriptors are value
    // types).
    gpu::KernelDescriptor kernel = bench.kernel;
    plat.launchKernel(&kernel);
    RunOutcome out;
    out.status = plat.run();
    out.finalTime = plat.engine().now();
    out.events = plat.engine().eventCount();

    out.memReqs = 0;
    for (auto &chip : plat.gpus()) {
        for (auto *cu : chip.cus) {
            out.memReqs += static_cast<std::uint64_t>(
                cu->fields().find("mem_reqs_issued")->getter().intVal());
        }
    }
    return out;
}

} // namespace

class BenchIntegration : public ::testing::TestWithParam<std::size_t>
{
  protected:
    workloads::Benchmark
    bench() const
    {
        return workloads::paperSuite(0.02)[GetParam()];
    }
};

TEST_P(BenchIntegration, CompletesAndConserves)
{
    RunOutcome out = runBench(bench(), 4, false);
    EXPECT_EQ(out.status, gpu::Platform::RunStatus::Completed);
    EXPECT_GT(out.memReqs, 0u);
    EXPECT_GT(out.events, out.memReqs)
        << "each memory request traverses multiple events";
}

TEST_P(BenchIntegration, MonitorDoesNotPerturbTiming)
{
    RunOutcome plain = runBench(bench(), 4, false);
    RunOutcome monitored = runBench(bench(), 4, true);
    EXPECT_EQ(monitored.status, gpu::Platform::RunStatus::Completed);
    EXPECT_EQ(plain.finalTime, monitored.finalTime) << bench().name;
    EXPECT_EQ(plain.memReqs, monitored.memReqs);
}

TEST_P(BenchIntegration, MoreChipletsNoSlowdownOnParallelWork)
{
    RunOutcome one = runBench(bench(), 1, false);
    RunOutcome four = runBench(bench(), 4, false);
    EXPECT_EQ(one.status, gpu::Platform::RunStatus::Completed);
    EXPECT_EQ(four.status, gpu::Platform::RunStatus::Completed);
    // Four chiplets quadruple compute and memory resources, but page
    // interleaving makes ~3/4 of accesses remote. Compute-bound grids
    // must not slow down much; communication-bound ones (BitonicSort's
    // power-of-two strides cross pages constantly) may pay up to the
    // network's latency/bandwidth penalty — the very effect case
    // study 1 diagnoses via the RDMA transaction count.
    bool networkBound = bench().name == "BitonicSort";
    EXPECT_LE(four.finalTime, one.finalTime * (networkBound ? 6 : 2))
        << bench().name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, BenchIntegration,
                         ::testing::Range<std::size_t>(0, 6));

TEST(Integration, PauseResumePreservesResult)
{
    // Pausing and resuming repeatedly must not change the simulation's
    // final virtual time (events execute identically).
    auto bench = workloads::paperSuite(0.02)[0]; // FIR.

    sim::VTime reference;
    {
        gpu::Platform plat(
            gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()));
        gpu::KernelDescriptor k = bench.kernel;
        plat.launchKernel(&k);
        plat.run();
        reference = plat.engine().now();
    }

    gpu::Platform plat(
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()));
    plat.engine().setConcurrentAccess(true);
    gpu::KernelDescriptor k = bench.kernel;
    plat.launchKernel(&k);

    std::thread runner([&]() { plat.run(); });
    for (int i = 0; i < 20; i++) {
        plat.engine().pause();
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        plat.engine().resume();
        std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    runner.join();
    EXPECT_EQ(plat.engine().now(), reference);
}

TEST(Integration, StopMidRunLeavesConsistentState)
{
    gpu::Platform plat(
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()));
    plat.engine().setConcurrentAccess(true);
    auto bench = workloads::paperSuite(0.05)[1]; // im2col.
    gpu::KernelDescriptor k = bench.kernel;
    plat.launchKernel(&k);

    std::thread runner([&]() { plat.run(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    plat.engine().stop();
    runner.join();

    // The engine halted between events: every component snapshot is
    // readable and buffer sizes are within capacity.
    for (auto *c : plat.components()) {
        for (auto *b : c->buffers()) {
            EXPECT_LE(b->size(), b->capacity()) << b->name();
        }
        for (const auto &f : c->fields().all())
            f.getter(); // Must not crash.
    }
}

TEST(Integration, CustomProgressBarForMemCopy)
{
    // §IV-C: developers can add custom bars, e.g. bytes copied.
    rtm::MonitorConfig mc;
    mc.announceUrl = false;
    rtm::Monitor mon(mc);

    gpu::Platform plat(
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny()));
    mon.registerEngine(&plat.engine());

    workloads::MemCopyParams p;
    p.bytes = 1 << 20;
    auto k = workloads::makeMemCopy(p);

    auto barId = mon.createProgressBar("memcopy bytes", p.bytes);
    // Update the custom bar from kernel progress (bytes = WGs * per-WG).
    class Bridge : public gpu::KernelProgressListener
    {
      public:
        rtm::Monitor *mon;
        std::uint64_t barId;
        std::uint64_t bytesPerWG;

        void kernelStarted(std::uint64_t, const std::string &,
                           std::uint64_t) override
        {
        }

        void
        kernelProgress(std::uint64_t, std::uint64_t completed,
                       std::uint64_t ongoing) override
        {
            mon->updateProgressBar(barId, completed * bytesPerWG,
                                   ongoing * bytesPerWG);
        }

        void kernelFinished(std::uint64_t) override {}
    } bridge;
    bridge.mon = &mon;
    bridge.barId = barId;
    bridge.bytesPerWG = p.bytesPerWG;
    plat.driver().setProgressListener(&bridge);

    plat.launchKernel(&k);
    EXPECT_EQ(plat.run(), gpu::Platform::RunStatus::Completed);

    auto bars = mon.progressBars();
    ASSERT_EQ(bars.size(), 1u);
    EXPECT_EQ(bars[0].completed, p.bytes);
    EXPECT_TRUE(mon.destroyProgressBar(barId));
}
