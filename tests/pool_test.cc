/**
 * @file
 * Tests for the hot-path memory model (DESIGN.md §10): the per-thread
 * slab pool (reuse ordering, oversize fallback, cross-thread frees,
 * stats), the intrusive refcounted MsgPtr, and the RTTI-free msgCast
 * kind-tag dispatch.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "rtm/monitor.hh"
#include "sim/sim.hh"

using namespace akita;
using namespace akita::sim;

namespace
{

/** Tagged test message; uses one of the kinds reserved for tests. */
class AlphaMsg : public Msg
{
  public:
    static constexpr MsgKind kKind = MsgKind::TestA;

    explicit AlphaMsg(int v = 0) : Msg(kKind), value(v) { liveCount++; }
    ~AlphaMsg() override { liveCount--; }

    const char *kind() const override { return "Alpha"; }

    int value;
    static int liveCount;
};

int AlphaMsg::liveCount = 0;

/** A second tagged kind, to prove tags do not cross-match. */
class BetaMsg : public Msg
{
  public:
    static constexpr MsgKind kKind = MsgKind::TestB;

    BetaMsg() : Msg(kKind) {}

    const char *kind() const override { return "Beta"; }
};

/** A handler that re-schedules itself, so workers allocate events. */
class PingHandler : public EventHandler
{
  public:
    PingHandler(Engine *eng, VTime period, int count)
        : eng_(eng), period_(period), remaining_(count)
    {
    }

    void
    handle(Event &e) override
    {
        if (--remaining_ > 0)
            eng_->schedule(
                std::make_unique<Event>(e.time() + period_, this));
    }

  private:
    Engine *eng_;
    VTime period_;
    int remaining_;
};

} // namespace

// ---------------------------------------------------------------------
// Raw pool behavior
// ---------------------------------------------------------------------

TEST(Pool, ReusesFreedBlockLifo)
{
    // Warm the freelist so the allocations below cannot be satisfied by
    // fresh slab carves in some interleavings.
    void *warm = poolAlloc(48);
    poolFree(warm);

    void *a = poolAlloc(48);
    poolFree(a);
    void *b = poolAlloc(48);
    // Same size class, freed last: the freelist hands the block back.
    EXPECT_EQ(b, a);
    poolFree(b);
}

TEST(Pool, DistinctLiveBlocksDoNotAlias)
{
    std::vector<void *> blocks;
    for (int i = 0; i < 100; i++) {
        void *p = poolAlloc(40);
        std::memset(p, i, 40);
        blocks.push_back(p);
    }
    for (int i = 0; i < 100; i++) {
        auto *bytes = static_cast<unsigned char *>(blocks[i]);
        for (int j = 0; j < 40; j++)
            ASSERT_EQ(bytes[j], static_cast<unsigned char>(i));
    }
    for (void *p : blocks)
        poolFree(p);
}

TEST(Pool, OversizeFallsBackToHeap)
{
    PoolStats before = poolStats();
    void *p = poolAlloc(64 * 1024); // Larger than any size class.
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 64 * 1024);
    poolFree(p);
    PoolStats after = poolStats();
    EXPECT_GE(after.oversizeAllocs, before.oversizeAllocs + 1);
}

TEST(Pool, StatsTrackAllocAndFreeDeltas)
{
    PoolStats before = poolStats();
    std::vector<void *> blocks;
    for (int i = 0; i < 64; i++)
        blocks.push_back(poolAlloc(48));
    PoolStats mid = poolStats();
    EXPECT_GE(mid.allocs, before.allocs + 64);
    EXPECT_GE(mid.liveBlocks, 64u);
    EXPECT_GT(mid.slabBytes, 0u);

    for (void *p : blocks)
        poolFree(p);
    PoolStats after = poolStats();
    EXPECT_GE(after.frees, before.frees + 64);
    // Everything this test allocated came back.
    EXPECT_EQ(after.allocs - (after.frees + after.remoteFrees),
              before.allocs - (before.frees + before.remoteFrees));
}

TEST(Pool, CrossThreadFreeTakesRemotePath)
{
    PoolStats before = poolStats();
    void *p = poolAlloc(48);
    std::thread t([p]() { poolFree(p); });
    t.join();
    PoolStats after = poolStats();
    EXPECT_GE(after.remoteFrees, before.remoteFrees + 1);

    // The remotely-freed block is drained back onto the owner's
    // freelist and becomes reusable here.
    std::vector<void *> again;
    for (int i = 0; i < 8; i++)
        again.push_back(poolAlloc(48));
    for (void *q : again)
        poolFree(q);
}

TEST(Pool, ParallelEngineFreesWorkerAllocationsRemotely)
{
    // Handlers run on worker threads and re-schedule there, so events
    // are allocated on workers; the coordinator clears each executed
    // cohort, which frees those events cross-thread.
    PoolStats before = poolStats();
    ParallelEngine eng(2);
    std::vector<std::unique_ptr<PingHandler>> handlers;
    for (int i = 0; i < 4; i++) {
        handlers.push_back(
            std::make_unique<PingHandler>(&eng, i + 1, 200));
        eng.schedule(std::make_unique<Event>(0, handlers.back().get()));
    }
    EXPECT_EQ(eng.run(), RunResult::Drained);
    PoolStats after = poolStats();
    EXPECT_GT(after.allocs, before.allocs);
    EXPECT_GT(after.remoteFrees, before.remoteFrees);
}

// ---------------------------------------------------------------------
// Intrusive message pointer
// ---------------------------------------------------------------------

TEST(IntrusiveMsg, RefcountSharedAcrossCopies)
{
    ASSERT_EQ(AlphaMsg::liveCount, 0);
    {
        auto a = makeMsg<AlphaMsg>(7);
        EXPECT_EQ(AlphaMsg::liveCount, 1);
        MsgPtr base = a; // Derived-to-base copy retains.
        IntrusivePtr<AlphaMsg> b = a;
        a.reset();
        EXPECT_EQ(AlphaMsg::liveCount, 1); // Two refs remain.
        EXPECT_EQ(b->value, 7);
        base = nullptr;
        EXPECT_EQ(AlphaMsg::liveCount, 1); // b still holds it.
    }
    EXPECT_EQ(AlphaMsg::liveCount, 0); // Last ref deleted it.
}

TEST(IntrusiveMsg, MoveDoesNotDoubleFree)
{
    auto a = makeMsg<AlphaMsg>(1);
    auto b = std::move(a);
    EXPECT_EQ(a.get(), nullptr);
    ASSERT_NE(b.get(), nullptr);
    EXPECT_EQ(AlphaMsg::liveCount, 1);
    b.reset();
    EXPECT_EQ(AlphaMsg::liveCount, 0);
}

// ---------------------------------------------------------------------
// Kind-tag dispatch (the dynamic_pointer_cast replacement)
// ---------------------------------------------------------------------

TEST(MsgCast, WrongKindReturnsNull)
{
    MsgPtr alpha = makeMsg<AlphaMsg>(3);
    MsgPtr beta = makeMsg<BetaMsg>();
    MsgPtr generic = makeMsg<Msg>();

    EXPECT_EQ(msgCast<BetaMsg>(alpha), nullptr);
    EXPECT_EQ(msgCast<AlphaMsg>(beta), nullptr);
    EXPECT_EQ(msgCast<AlphaMsg>(generic), nullptr);
    EXPECT_EQ(msgCast<AlphaMsg>(MsgPtr{}), nullptr);

    auto back = msgCast<AlphaMsg>(alpha);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->value, 3);
    EXPECT_EQ(back.get(), alpha.get());
}

TEST(MsgCast, TagsSurviveTransportFields)
{
    auto req = makeMsg<AlphaMsg>(9);
    req->sendTime = 42;
    req->trafficBytes = 64;
    MsgPtr asBase = req;
    EXPECT_EQ(asBase->kindTag(), MsgKind::TestA);
    EXPECT_STREQ(asBase->kind(), "Alpha");
    auto cast = msgCast<AlphaMsg>(asBase);
    ASSERT_NE(cast, nullptr);
    EXPECT_EQ(cast->sendTime, 42u);
}

// ---------------------------------------------------------------------
// Pool counters on the monitor's metrics surface
// ---------------------------------------------------------------------

TEST(PoolMetrics, ExposedAsAkitaSimPoolFamily)
{
    sim::SerialEngine eng;
    rtm::MonitorConfig cfg;
    cfg.announceUrl = false;
    cfg.autoSample = false;
    rtm::Monitor mon(cfg);
    mon.registerEngine(&eng);

    // Touch the pool so the counters are non-trivial.
    auto m = makeMsg<AlphaMsg>(1);
    m.reset();

    std::string text = mon.metrics().renderPrometheus();
    for (const char *name :
         {"akita_sim_pool_allocs_total", "akita_sim_pool_frees_total",
          "akita_sim_pool_remote_frees_total",
          "akita_sim_pool_oversize_allocs_total",
          "akita_sim_pool_slab_bytes", "akita_sim_pool_live_blocks"}) {
        EXPECT_NE(text.find(name), std::string::npos) << name;
    }
}
