/**
 * @file
 * Hang root-cause tests: the wait-for-graph analyzer on the paper's L2
 * write-buffer deadlock (case study 2), HangWatch under the parallel
 * engine, and the live /api/v1/hang + /api/v1/recorder endpoints with
 * their no-stale-verdict cache behavior.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <thread>

#include "gpu/platform.hh"
#include "json/json.hh"
#include "mem/dram.hh"
#include "mem/l2cache.hh"
#include "mem_harness.hh"
#include "recorder/segment.hh"
#include "rtm/monitor.hh"
#include "rtm/waitfor.hh"
#include "web/client.hh"
#include "workloads/workloads.hh"

using namespace akita;
using namespace akita::mem;
using akita::json::Json;
using akita::test::Requester;

namespace
{

/** The case-study-2 rig: legacy L2 between a requester and a DRAM. */
struct DeadlockRig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req", 8};
    L2Cache l2;
    DramController dram;
    sim::DirectConnection top{&eng, "Top", sim::kNanosecond};
    sim::DirectConnection bottom{&eng, "Bottom", sim::kNanosecond};

    DeadlockRig()
        : l2(&eng, "L2", sim::Freq::ghz(1), l2Config()),
          dram(&eng, "DRAM", sim::Freq::ghz(1), {})
    {
        top.plugIn(req.out);
        top.plugIn(l2.topPort());
        bottom.plugIn(l2.bottomPort());
        bottom.plugIn(l2.wbPort());
        bottom.plugIn(dram.topPort());
        l2.setDownstream(dram.topPort());
    }

    static L2Cache::Config
    l2Config()
    {
        L2Cache::Config cfg;
        cfg.numSets = 1;
        cfg.ways = 4;
        cfg.mshrCapacity = 16;
        cfg.wbInCapacity = 2;
        cfg.wbFetchedCapacity = 2;
        cfg.installCapacity = 2;
        cfg.dramWriteInflightMax = 1;
        cfg.legacyWriteBufferDeadlock = true;
        return cfg;
    }

    /** Drives the rig into the deadlock and drains the engine. */
    void
    deadlock()
    {
        for (int i = 0; i < 200; i++)
            req.enqueue(0x10000ull + static_cast<std::uint64_t>(i) * 64,
                        true, l2.topPort());
        req.tickLater();
        eng.run();
    }
};

rtm::HangStatus
hangingStatus()
{
    rtm::HangStatus st;
    st.hanging = true;
    st.frozenForSec = 3.0;
    st.queueDrained = true;
    return st;
}

bool
contains(const std::vector<std::string> &v, const std::string &s)
{
    for (const auto &e : v)
        if (e == s)
            return true;
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// The analyzer on a quiesced deadlock
// ---------------------------------------------------------------------

TEST(WaitFor, L2LegacyDeadlockNamesTheCycle)
{
    DeadlockRig rig;
    rig.deadlock();
    ASSERT_TRUE(rig.l2.evictionStalled()) << "rig did not deadlock";

    rtm::ComponentRegistry reg;
    reg.add(&rig.req);
    reg.add(&rig.l2);
    reg.add(&rig.dram);
    std::vector<sim::Connection *> conns{&rig.top, &rig.bottom};

    rtm::HangAnalyzer analyzer(&reg, &conns);
    rtm::HangReport report = analyzer.analyze(hangingStatus());

    EXPECT_EQ(report.verdict, "cycle") << report.summary;
    // The culprit chain is the paper's storage <-> write-buffer loop.
    EXPECT_TRUE(contains(report.cycle, "L2.storage")) << report.summary;
    EXPECT_TRUE(contains(report.cycle, "L2.writeBuffer"))
        << report.summary;
    ASSERT_EQ(report.cycle.size(), report.cycleEdges.size());
    // Each cycle edge names the full buffer it waits through.
    bool viaInBuf = false, viaInstall = false;
    for (const auto &e : report.cycleEdges) {
        if (e.via == "L2.WriteBuf.InBuf")
            viaInBuf = true;
        if (e.via == "L2.InstallBuf")
            viaInstall = true;
        EXPECT_GT(e.fullness, 0.0);
    }
    EXPECT_TRUE(viaInBuf && viaInstall) << report.summary;
    EXPECT_NE(report.summary.find("deadlock cycle"), std::string::npos);
    // The requester is an upstream victim, not part of the cycle.
    EXPECT_FALSE(contains(report.cycle, "Req"));
}

TEST(WaitFor, NotHangingShortCircuits)
{
    rtm::ComponentRegistry reg;
    std::vector<sim::Connection *> conns;
    rtm::HangAnalyzer analyzer(&reg, &conns);

    rtm::HangStatus ok; // hanging = false.
    rtm::HangReport report = analyzer.analyze(ok);
    EXPECT_EQ(report.verdict, "ok");
    EXPECT_TRUE(report.edges.empty());
}

TEST(WaitFor, HangWithoutWaitEdgesIsNoWaits)
{
    // A lost wakeup: everything asleep, nothing blocked on anything.
    sim::SerialEngine eng;
    Requester idle(&eng, "Idle");
    rtm::ComponentRegistry reg;
    reg.add(&idle);
    std::vector<sim::Connection *> conns;

    rtm::HangAnalyzer analyzer(&reg, &conns);
    rtm::HangReport report = analyzer.analyze(hangingStatus());
    EXPECT_EQ(report.verdict, "no-waits");
}

TEST(WaitFor, DeadConsumerIsAStalledSink)
{
    // A sink that never drains its port: senders pile up behind it but
    // no cycle exists — the analyzer must name the sink, not guess.
    struct DeadSink : sim::TickingComponent
    {
        sim::Port *in = nullptr;
        DeadSink(sim::Engine *e)
            : TickingComponent(e, "Sink", sim::Freq::ghz(1))
        {
            in = addPort("In", 4);
        }
        bool tick() override { return false; } // Never retrieves.
    };

    sim::SerialEngine eng;
    Requester req(&eng, "Req", 8);
    DeadSink sink(&eng);
    sim::DirectConnection conn(&eng, "Conn", sim::kNanosecond);
    conn.plugIn(req.out);
    conn.plugIn(sink.in);

    for (int i = 0; i < 30; i++)
        req.enqueue(0x1000ull + static_cast<std::uint64_t>(i) * 64, true,
                    sink.in);
    req.tickLater();
    eng.run();

    rtm::ComponentRegistry reg;
    reg.add(&req);
    reg.add(&sink);
    std::vector<sim::Connection *> conns{&conn};

    rtm::HangAnalyzer analyzer(&reg, &conns);
    rtm::HangReport report = analyzer.analyze(hangingStatus());
    EXPECT_EQ(report.verdict, "stalled-sink") << report.summary;
    EXPECT_EQ(report.sink, "Sink");
    EXPECT_TRUE(contains(report.upstreamBlocked, "Req"));
    EXPECT_NE(report.summary.find("stalled sink"), std::string::npos);
}

TEST(WaitFor, ReportSerializesToJson)
{
    DeadlockRig rig;
    rig.deadlock();

    rtm::ComponentRegistry reg;
    reg.add(&rig.l2);
    std::vector<sim::Connection *> conns{&rig.top, &rig.bottom};
    rtm::HangReport report =
        rtm::HangAnalyzer(&reg, &conns).analyze(hangingStatus());

    std::string out;
    rtm::writeHangReport(out, report);
    Json j = Json::parse(out);
    EXPECT_TRUE(j.getBool("hanging", false));
    EXPECT_EQ(j.getStr("verdict"), "cycle");
    EXPECT_GE(j.get("cycle")->items().size(), 2u);
    EXPECT_GE(j.get("cycle_edges")->items().size(), 2u);
    EXPECT_FALSE(j.getStr("summary").empty());
}

// ---------------------------------------------------------------------
// HangWatch + analyzer on a full platform, parallel engine included
// ---------------------------------------------------------------------

namespace
{

gpu::PlatformConfig
deadlockPlatformConfig(gpu::EngineKind kind)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.engineKind = kind;
    cfg.workers = 2;
    cfg.legacyL2Deadlock = true;
    cfg.gpu.l2.numSets = 1;
    cfg.gpu.l2.ways = 4;
    cfg.gpu.l2.wbInCapacity = 2;
    cfg.gpu.l2.installCapacity = 2;
    cfg.gpu.l2.wbFetchedCapacity = 2;
    cfg.gpu.l2.dramWriteInflightMax = 1;
    return cfg;
}

/** Runs a deadlocking kernel and waits for HangWatch to fire. */
struct HangRig
{
    gpu::Platform plat;
    rtm::Monitor mon;
    gpu::KernelDescriptor kernel;
    std::thread simThread;

    explicit HangRig(gpu::EngineKind kind,
                     const std::string &record_path = "")
        : plat(deadlockPlatformConfig(kind)), mon(monitorConfig(record_path)),
          kernel(makeKernel())
    {
        mon.registerEngine(&plat.engine());
        for (auto *c : plat.components())
            mon.registerComponent(c);
        for (auto *conn : plat.connections())
            mon.registerConnection(conn);
        plat.driver().setProgressListener(&mon);
    }

    static rtm::MonitorConfig
    monitorConfig(const std::string &record_path)
    {
        rtm::MonitorConfig mcfg;
        mcfg.announceUrl = false;
        mcfg.sampleIntervalMs = 10;
        mcfg.hangThresholdSec = 0.2;
        mcfg.recordPath = record_path;
        return mcfg;
    }

    static gpu::KernelDescriptor
    makeKernel()
    {
        workloads::TransposeParams tp;
        tp.n = 128;
        return workloads::makeTranspose(tp);
    }

    void
    run()
    {
        plat.launchKernel(&kernel);
        simThread = std::thread([this]() { plat.run(); });
    }

    /** Polls HangWatch until the hang signature holds (or times out). */
    bool
    waitForHang()
    {
        for (int i = 0; i < 800; i++) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            rtm::HangStatus st = mon.hangStatus();
            if (st.hanging && st.queueDrained)
                return true;
        }
        return false;
    }

    ~HangRig()
    {
        plat.engine().stop();
        if (simThread.joinable())
            simThread.join();
        mon.stopServer();
    }
};

} // namespace

TEST(HangWatch, ParallelEngineDeadlockAnalyzed)
{
    HangRig rig(gpu::EngineKind::Parallel);
    rig.run();
    ASSERT_TRUE(rig.waitForHang()) << "HangWatch did not fire";

    rtm::HangReport report = rig.mon.hangReport();
    EXPECT_TRUE(report.status.hanging);
    EXPECT_EQ(report.verdict, "cycle") << report.summary;
    bool namesStorage = false;
    for (const auto &node : report.cycle)
        if (node.find(".storage") != std::string::npos)
            namesStorage = true;
    EXPECT_TRUE(namesStorage) << report.summary;
    EXPECT_FALSE(report.upstreamBlocked.empty())
        << "the CUs upstream of the dead L2 are victims";
}

TEST(HangWatch, SerialEngineNoHangReportsOk)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::Platform plat(cfg);
    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    mcfg.hangThresholdSec = 0.2;
    rtm::Monitor mon(mcfg);
    mon.registerEngine(&plat.engine());
    for (auto *c : plat.components())
        mon.registerComponent(c);

    rtm::HangReport report = mon.hangReport();
    EXPECT_EQ(report.verdict, "ok");
    EXPECT_FALSE(report.status.hanging);
}

// ---------------------------------------------------------------------
// The live endpoints: /api/v1/hang and /api/v1/recorder/*
// ---------------------------------------------------------------------

namespace
{

Json
getJson(const web::HttpClient &c, const std::string &target)
{
    auto r = c.get(target);
    EXPECT_TRUE(r.has_value()) << target;
    EXPECT_EQ(r->status, 200) << target << ": " << (r ? r->body : "");
    return Json::parse(r->body);
}

std::string
tempSegmentPath()
{
    return "/tmp/akita_hang_test_" + std::to_string(::getpid()) + ".seg";
}

} // namespace

TEST(HangApi, EndpointNamesCycleAndRecorderServes)
{
    std::string seg = tempSegmentPath();
    ::unlink(seg.c_str());

    {
        HangRig rig(gpu::EngineKind::Serial, seg);
        ASSERT_TRUE(rig.mon.startServer());
        rig.run();
        ASSERT_TRUE(rig.waitForHang()) << "HangWatch did not fire";

        web::HttpClient c("127.0.0.1", rig.mon.serverPort());

        // The hang endpoint names the actual culprit chain.
        Json hang = getJson(c, "/api/v1/hang");
        EXPECT_TRUE(hang.getBool("hanging", false));
        EXPECT_EQ(hang.getStr("verdict"), "cycle")
            << hang.getStr("summary");
        ASSERT_GE(hang.get("cycle")->items().size(), 2u);
        bool namesStorage = false;
        for (const auto &node : hang.get("cycle")->items())
            if (node.strVal().find(".storage") != std::string::npos)
                namesStorage = true;
        EXPECT_TRUE(namesStorage) << hang.getStr("summary");

        // A hung sim must not serve a stale "not hanging" verdict:
        // x-akita-no-cache forces a rebuild.
        web::PersistentClient pc("127.0.0.1", rig.mon.serverPort());
        auto fresh =
            pc.get("/api/v1/hang", {{"x-akita-no-cache", "1"}});
        ASSERT_TRUE(fresh.has_value());
        EXPECT_EQ(fresh->status, 200);
        EXPECT_FALSE(fresh->headers.count("etag"))
            << "bypassed responses carry no validator";
        EXPECT_TRUE(Json::parse(fresh->body).getBool("hanging", false));

        // The recorder is live: info reflects the segment.
        Json info = getJson(c, "/api/v1/recorder/info");
        EXPECT_EQ(info.getStr("path"), seg);
        EXPECT_GT(info.getInt("next_seq", 0), 0);
        EXPECT_GT(info.getInt("window_records", 0), 0);

        // Range queries answer from memory or fall through to disk.
        Json range = getJson(
            c, "/api/v1/recorder/range?name=akita_rtm_hang_suspected");
        std::string source = range.getStr("source");
        EXPECT_TRUE(source == "memory" || source == "segment") << source;

        // No-cache works on the recorder endpoints too.
        auto rfresh = pc.get("/api/v1/recorder/info",
                             {{"x-akita-no-cache", "1"}});
        ASSERT_TRUE(rfresh.has_value());
        EXPECT_EQ(rfresh->status, 200);
    } // Rig teardown stops the sim and syncs the recorder.

    // Post mortem: the segment recovers, holding the hang report the
    // monitor teed in when the watchdog first fired.
    std::string err;
    auto reader = recorder::SegmentReader::open(seg, &err);
    ASSERT_NE(reader, nullptr) << err;
    bool sawHangReport = false, sawEvent = false;
    for (const auto &rec : reader->records()) {
        if (rec.type == recorder::RecordType::HangReport) {
            sawHangReport = true;
            Json j = Json::parse(std::string(
                reinterpret_cast<const char *>(rec.payload),
                rec.payloadLen));
            EXPECT_EQ(j.getStr("verdict"), "cycle");
        }
        if (rec.type == recorder::RecordType::EngineEvent)
            sawEvent = true;
    }
    EXPECT_TRUE(sawHangReport)
        << "the hang verdict must survive on disk";
    EXPECT_TRUE(sawEvent);
    ::unlink(seg.c_str());
}

TEST(HangApi, RecorderDisabledReturns404)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::Platform plat(cfg);
    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    rtm::Monitor mon(mcfg); // No recordPath.
    mon.registerEngine(&plat.engine());
    ASSERT_TRUE(mon.startServer());

    web::HttpClient c("127.0.0.1", mon.serverPort());
    auto r = c.get("/api/v1/recorder/info");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 404);
    auto r2 = c.get("/api/v1/recorder/range?name=x");
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->status, 404);
    // The hang endpoint works regardless of the recorder.
    auto r3 = c.get("/api/v1/hang");
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->status, 200);
    EXPECT_EQ(Json::parse(r3->body).getStr("verdict"), "ok");
    mon.stopServer();
}
