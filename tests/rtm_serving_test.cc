/**
 * @file
 * Tests for the serving fast path: the generation-stamped response
 * cache (build coalescing, ETags, LRU) and the streaming serializers'
 * byte equivalence with the Json-tree builders they replace.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "json/json.hh"
#include "json/writer.hh"
#include "rtm/progressbar.hh"
#include "rtm/registry.hh"
#include "rtm/respcache.hh"
#include "rtm/serialize.hh"
#include "rtm/valuemonitor.hh"

using namespace akita;
using rtm::ResponseCache;

TEST(ResponseCache, BuildsOncePerGeneration)
{
    ResponseCache cache;
    auto build = []() { return std::string("body"); };
    auto a = cache.get("/x", 1, "text/plain", build);
    auto b = cache.get("/x", 1, "text/plain", build);
    EXPECT_EQ(cache.buildCount(), 1u);
    EXPECT_EQ(a->body, "body");
    EXPECT_EQ(a.get(), b.get()) << "same entry is shared";
}

TEST(ResponseCache, StaleGenerationRebuilds)
{
    ResponseCache cache;
    int calls = 0;
    auto build = [&]() { return "v" + std::to_string(++calls); };
    EXPECT_EQ(cache.get("/x", 1, "t", build)->body, "v1");
    EXPECT_EQ(cache.get("/x", 2, "t", build)->body, "v2");
    // Lower/equal generations are served from cache.
    EXPECT_EQ(cache.get("/x", 1, "t", build)->body, "v2");
    EXPECT_EQ(cache.get("/x", 2, "t", build)->body, "v2");
    EXPECT_EQ(cache.buildCount(), 2u);
}

TEST(ResponseCache, DistinctKeysBuildIndependently)
{
    ResponseCache cache;
    cache.get("/x?a=1", 1, "t", []() { return std::string("a"); });
    cache.get("/x?a=2", 1, "t", []() { return std::string("b"); });
    EXPECT_EQ(cache.buildCount(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResponseCache, ConcurrentIdenticalRequestsCoalesce)
{
    // The ISSUE acceptance scenario: K simultaneous identical GETs
    // must trigger exactly one (slow) build, shared by all waiters.
    constexpr int kClients = 8;
    ResponseCache cache;
    std::atomic<int> entered{0};
    auto slowBuild = [&]() {
        entered++;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return std::string("shared");
    };

    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const ResponseCache::Entry>> results(
        kClients);
    for (int i = 0; i < kClients; i++) {
        threads.emplace_back([&, i]() {
            results[i] = cache.get("/hot", 7, "t", slowBuild);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(cache.buildCount(), 1u);
    EXPECT_EQ(entered.load(), 1);
    for (const auto &r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->body, "shared");
        EXPECT_EQ(r.get(), results[0].get());
    }
}

TEST(ResponseCache, WaitersAcceptInFlightBuildAtNewerRequestedGen)
{
    // Generation sources like the engine event count advance
    // continuously; a waiter asking for gen G+1 while a build for G is
    // in flight must share that result instead of building again.
    ResponseCache cache;
    std::atomic<bool> inBuild{false};
    auto slowBuild = [&]() {
        inBuild = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return std::string("gen10");
    };

    std::thread first(
        [&]() { cache.get("/hot", 10, "t", slowBuild); });
    while (!inBuild.load())
        std::this_thread::yield();
    auto late = cache.get("/hot", 11, "t", slowBuild);
    first.join();

    EXPECT_EQ(late->body, "gen10");
    EXPECT_EQ(cache.buildCount(), 1u);
}

TEST(ResponseCache, EtagTracksBodyNotGeneration)
{
    ResponseCache cache;
    auto same = []() { return std::string("constant"); };
    std::string etag1 = cache.get("/x", 1, "t", same)->etag;
    std::string etag2 = cache.get("/x", 2, "t", same)->etag;
    // Generation advanced but the bytes did not: the ETag must be
    // stable so pollers keep getting 304s.
    EXPECT_EQ(etag1, etag2);
    EXPECT_EQ(etag1.front(), '"');
    EXPECT_EQ(etag1.back(), '"');

    std::string etag3 =
        cache.get("/x", 3, "t", []() { return std::string("changed"); })
            ->etag;
    EXPECT_NE(etag3, etag1);
}

TEST(ResponseCache, LruEvictsOldestKey)
{
    ResponseCache cache(2);
    auto build = []() { return std::string("b"); };
    cache.get("/a", 1, "t", build);
    cache.get("/b", 1, "t", build);
    cache.get("/a", 1, "t", build); // Touch /a so /b is the LRU.
    cache.get("/c", 1, "t", build);
    EXPECT_EQ(cache.size(), 2u);
    // /a survived; /b was evicted and needs a rebuild.
    cache.get("/a", 1, "t", build);
    EXPECT_EQ(cache.buildCount(), 3u);
    cache.get("/b", 1, "t", build);
    EXPECT_EQ(cache.buildCount(), 4u);
}

TEST(ResponseCache, BuilderExceptionPropagatesAndDoesNotPoison)
{
    ResponseCache cache;
    EXPECT_THROW(cache.get("/x", 1, "t",
                           []() -> std::string {
                               throw std::runtime_error("boom");
                           }),
                 std::runtime_error);
    // The key is not left in a stuck "building" state.
    EXPECT_EQ(cache.get("/x", 1, "t",
                        []() { return std::string("ok"); })
                  ->body,
              "ok");
}

TEST(ResponseCache, ClearDropsEntries)
{
    ResponseCache cache;
    cache.get("/x", 1, "t", []() { return std::string("b"); });
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    cache.get("/x", 1, "t", []() { return std::string("b"); });
    EXPECT_EQ(cache.buildCount(), 2u);
}

// ---------------------------------------------------------------------
// Streaming serializers vs Json-tree serializers
// ---------------------------------------------------------------------

TEST(StreamingSerialize, BuffersMatchTreePath)
{
    std::vector<rtm::BufferLevel> levels;
    for (int i = 0; i < 4; i++) {
        rtm::BufferLevel l;
        l.name = "GPU[" + std::to_string(i) + "].L1V.Buf";
        l.size = static_cast<std::size_t>(i * 3);
        l.capacity = 16;
        levels.push_back(l);
    }
    std::string streamed;
    json::Writer w(streamed);
    rtm::writeBuffers(w, levels);
    EXPECT_EQ(streamed, rtm::serializeBuffers(levels).dump());
}

TEST(StreamingSerialize, ProgressMatchesTreePath)
{
    std::vector<rtm::ProgressBar> bars(2);
    bars[0].id = 1;
    bars[0].label = "kernel \"fir\"";
    bars[0].total = 100;
    bars[0].completed = 40;
    bars[0].inProgress = 8;
    bars[1].id = 2;
    bars[1].label = "copy";
    bars[1].total = 7;
    std::string streamed;
    json::Writer w(streamed);
    rtm::writeProgress(w, bars);
    EXPECT_EQ(streamed, rtm::serializeProgress(bars).dump());
}

TEST(StreamingSerialize, SeriesMatchesTreePath)
{
    rtm::TrackedSeries s;
    s.id = 3;
    s.componentName = "GPU[0].SA[1]";
    s.fieldName = "occupancy";
    for (int i = 0; i < 5; i++)
        s.samples.push_back({static_cast<sim::VTime>(i * 1000),
                             i * 0.125});
    std::string streamed;
    json::Writer w(streamed);
    rtm::writeSeries(w, s);
    EXPECT_EQ(streamed, rtm::serializeSeries(s).dump());
}

TEST(StreamingSerialize, TreeMatchesTreePath)
{
    rtm::TreeNode root;
    root.label = "root";
    auto gpu = std::make_unique<rtm::TreeNode>();
    gpu->label = "GPU[0]";
    auto sa = std::make_unique<rtm::TreeNode>();
    sa->label = "SA[0]";
    sa->componentName = "GPU[0].SA[0]";
    gpu->children.emplace("SA[0]", std::move(sa));
    root.children.emplace("GPU[0]", std::move(gpu));

    std::string streamed;
    json::Writer w(streamed);
    rtm::writeTree(w, root);
    EXPECT_EQ(streamed, rtm::serializeTree(root).dump());
}

// ---------------------------------------------------------------------
// TTL floors, serving counters, and per-encoding bodies
// ---------------------------------------------------------------------

#include "rtm/monitor.hh"
#include "web/client.hh"
#include "web/encoding.hh"

TEST(ResponseCache, TtlFloorCoalescesAcrossGenerationBump)
{
    ResponseCache cache;
    int calls = 0;
    auto build = [&]() { return "v" + std::to_string(++calls); };
    // First polling wave builds at generation 1.
    EXPECT_EQ(cache.get("/x", 1, "t", build, /*ttl_ms=*/500)->body, "v1");
    // The generation bumps, but a second wave arrives within the TTL
    // floor: it must be served the (slightly stale) cached bytes.
    EXPECT_EQ(cache.get("/x", 2, "t", build, /*ttl_ms=*/500)->body, "v1");
    EXPECT_EQ(cache.buildCount(), 1u);
    EXPECT_EQ(cache.hitCount(), 1u);
    EXPECT_EQ(cache.missCount(), 1u);
}

TEST(ResponseCache, TtlZeroKeepsStrictGenerationSemantics)
{
    ResponseCache cache;
    int calls = 0;
    auto build = [&]() { return "v" + std::to_string(++calls); };
    EXPECT_EQ(cache.get("/x", 1, "t", build, 0)->body, "v1");
    EXPECT_EQ(cache.get("/x", 2, "t", build, 0)->body, "v2");
    EXPECT_EQ(cache.buildCount(), 2u);
}

TEST(ResponseCache, TtlExpiryRebuildsOnStaleGeneration)
{
    ResponseCache cache;
    int calls = 0;
    auto build = [&]() { return "v" + std::to_string(++calls); };
    cache.get("/x", 1, "t", build, 20);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // TTL elapsed and the generation moved on: rebuild.
    EXPECT_EQ(cache.get("/x", 2, "t", build, 20)->body, "v2");
    // But a fresh-enough *generation* never needs the TTL.
    EXPECT_EQ(cache.get("/x", 2, "t", build, 20)->body, "v2");
    EXPECT_EQ(cache.buildCount(), 2u);
}

TEST(ResponseCache, CountersClassifyEveryOutcome)
{
    ResponseCache cache;
    auto build = []() { return std::string("body"); };
    cache.get("/x", 1, "t", build);  // miss
    cache.get("/x", 1, "t", build);  // hit
    cache.get("/x", 1, "t", build);  // hit
    EXPECT_EQ(cache.missCount(), 1u);
    EXPECT_EQ(cache.hitCount(), 2u);
    EXPECT_EQ(cache.coalesceCount(), 0u);
    EXPECT_EQ(cache.notModifiedCount(), 0u);
    cache.noteNotModified();
    EXPECT_EQ(cache.notModifiedCount(), 1u);

    // Waiters on an in-flight build count as coalesced, not hits.
    std::atomic<bool> inBuild{false};
    auto slowBuild = [&]() {
        inBuild = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        return std::string("slow");
    };
    std::thread first([&]() { cache.get("/slow", 1, "t", slowBuild); });
    while (!inBuild.load())
        std::this_thread::yield();
    cache.get("/slow", 1, "t", slowBuild);
    first.join();
    EXPECT_EQ(cache.coalesceCount(), 1u);
}

TEST(ResponseCache, EncodedBodyCompressesOncePerEntry)
{
    if (!web::encodingSupported())
        GTEST_SKIP() << "built without zlib";
    ResponseCache cache;
    std::string big;
    for (int i = 0; i < 300; i++)
        big += "repetitive cache payload segment " + std::to_string(i);
    auto entry =
        cache.get("/x", 1, "t", [&]() { return big; });

    const std::string *gz =
        cache.encodedBody(entry, web::ContentEncoding::Gzip);
    ASSERT_NE(gz, nullptr);
    EXPECT_LT(gz->size(), big.size());
    const std::string *again =
        cache.encodedBody(entry, web::ContentEncoding::Gzip);
    EXPECT_EQ(gz, again) << "same cached bytes, not a re-compression";
    EXPECT_EQ(cache.encodeCount(), 1u);

    std::string unpacked;
    ASSERT_TRUE(web::decompressBody(*gz, unpacked, 1u << 24));
    EXPECT_EQ(unpacked, entry->body);

    // A second coding is an independent variant of the same entry.
    const std::string *fl =
        cache.encodedBody(entry, web::ContentEncoding::Deflate);
    ASSERT_NE(fl, nullptr);
    EXPECT_EQ(cache.encodeCount(), 2u);

    // Identity asks for nothing.
    EXPECT_EQ(cache.encodedBody(entry, web::ContentEncoding::Identity),
              nullptr);

    // A new generation's entry starts with no encoded variants.
    auto entry2 = cache.get("/x", 2, "t", [&]() { return big + "!"; });
    cache.encodedBody(entry2, web::ContentEncoding::Gzip);
    EXPECT_EQ(cache.encodeCount(), 3u);
}

TEST(MonitorServing, CacheCountersExportedViaMetrics)
{
    rtm::MonitorConfig cfg;
    cfg.port = 0;
    cfg.announceUrl = false;
    cfg.metricsEnabled = true;
    cfg.metricsIntervalMs = 3600 * 1000; // Manual passes only.
    rtm::Monitor mon(cfg);
    ASSERT_TRUE(mon.startServer());

    web::PersistentClient client("127.0.0.1", mon.serverPort());
    auto a = client.get("/api/components");
    auto b = client.get("/api/components");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_GE(mon.responseCache().hitCount() +
                  mon.responseCache().coalesceCount(),
              1u);

    auto metrics = client.get("/metrics");
    ASSERT_TRUE(metrics.has_value());
    EXPECT_NE(metrics->body.find(
                  "akita_rtm_response_cache_events_total{kind=\"hit\"}"),
              std::string::npos)
        << metrics->body.substr(0, 400);
    EXPECT_NE(metrics->body.find(
                  "akita_rtm_response_cache_events_total{kind=\"miss\"}"),
              std::string::npos);
    mon.stopServer();
}
