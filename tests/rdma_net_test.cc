/**
 * @file
 * Tests for the RDMA engine and the switched inter-chiplet network.
 */

#include <gtest/gtest.h>

#include "mem/rdma.hh"
#include "mem_harness.hh"
#include "net/switched.hh"

using namespace akita;
using namespace akita::mem;
using akita::test::FakeMemory;
using akita::test::Requester;

namespace
{

/**
 * Two-chiplet rig: requester on chiplet 0, memory on both; odd pages
 * live on chiplet 1 (page interleaving with 2 devices).
 */
struct TwoChipRig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req"};
    RdmaEngine rdma0;
    RdmaEngine rdma1;
    FakeMemory mem0{&eng, "Mem0", 4};
    FakeMemory mem1{&eng, "Mem1", 4};
    sim::DirectConnection inside0{&eng, "Inside0", sim::kNanosecond};
    sim::DirectConnection inside1{&eng, "Inside1", sim::kNanosecond};
    net::SwitchedNetwork network;
    SinglePortMapper map0;
    SinglePortMapper map1;
    ChipletInterleaving interleave;

    explicit TwoChipRig(net::SwitchedNetwork::Config netCfg = {})
        : rdma0(&eng, "GPU[0].RDMA", sim::Freq::ghz(1), {}),
          rdma1(&eng, "GPU[1].RDMA", sim::Freq::ghz(1), {}),
          network(&eng, "Network", netCfg), map0(nullptr), map1(nullptr)
    {
        interleave.pageSize = 4096;
        interleave.numDevices = 2;

        inside0.plugIn(req.out);
        inside0.plugIn(rdma0.toInsidePort());
        inside0.plugIn(mem0.top);
        inside1.plugIn(rdma1.toInsidePort());
        inside1.plugIn(mem1.top);
        network.plugIn(rdma0.toOutsidePort());
        network.plugIn(rdma1.toOutsidePort());

        map0 = SinglePortMapper(mem0.top);
        map1 = SinglePortMapper(mem1.top);
        rdma0.setLocalMapper(&map0);
        rdma1.setLocalMapper(&map1);

        auto finder = [this](std::uint64_t addr) -> sim::Port * {
            return interleave.deviceOf(addr) == 0
                       ? rdma0.toOutsidePort()
                       : rdma1.toOutsidePort();
        };
        rdma0.setRemoteFinder(finder);
        rdma1.setRemoteFinder(finder);
    }
};

} // namespace

TEST(RdmaTest, RemoteRequestRoundTrip)
{
    TwoChipRig rig;
    // Page 1 (0x1000) belongs to chiplet 1: must travel via RDMA.
    auto id = rig.req.enqueue(0x1000, false, rig.rdma0.toInsidePort());
    rig.req.tickLater();
    rig.eng.run();

    ASSERT_EQ(rig.req.rspOrder.size(), 1u);
    EXPECT_EQ(rig.req.rspOrder[0], id);
    EXPECT_EQ(rig.mem1.reqsSeen.size(), 1u);
    EXPECT_EQ(rig.mem0.reqsSeen.size(), 0u);
    EXPECT_EQ(rig.rdma0.transactionCount(), 0u) << "tables drained";
    EXPECT_EQ(rig.rdma1.transactionCount(), 0u);
}

TEST(RdmaTest, ManyOutstandingTransactions)
{
    TwoChipRig rig;
    for (int i = 0; i < 64; i++)
        rig.req.enqueue(0x1000ull + static_cast<std::uint64_t>(i) * 8192,
                        i % 4 == 0, rig.rdma0.toInsidePort());
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 64u);
    EXPECT_EQ(rig.mem1.reqsSeen.size(), 64u);
}

TEST(RdmaTest, TracksInflightDuringFlight)
{
    net::SwitchedNetwork::Config slow;
    slow.latency = 500 * sim::kNanosecond;
    slow.bytesPerSecond = 1e9; // Deliberately slow.
    TwoChipRig rig(slow);

    for (int i = 0; i < 32; i++)
        rig.req.enqueue(0x1000ull + static_cast<std::uint64_t>(i) * 8192,
                        false, rig.rdma0.toInsidePort());
    rig.req.tickLater();

    // Probe the RDMA inflight table mid-simulation: with a slow network
    // the outgoing table must accumulate (the case-study signature).
    std::size_t maxInflight = 0;
    std::function<void()> probe = [&]() {
        maxInflight =
            std::max(maxInflight, rig.rdma0.transactionCount());
        if (rig.req.rspOrder.size() < 32)
            rig.eng.scheduleAt(rig.eng.now() + 10 * sim::kNanosecond,
                               "probe", probe);
    };
    rig.eng.scheduleAt(1, "probe", probe);
    rig.eng.run();

    EXPECT_EQ(rig.req.rspOrder.size(), 32u);
    EXPECT_GE(maxInflight, 8u)
        << "slow network must pile transactions up in the RDMA";
}

TEST(SwitchedNetworkTest, DeliversWithLatency)
{
    sim::SerialEngine eng;
    Requester req(&eng, "Req");
    FakeMemory memory(&eng, "Mem", 1);
    net::SwitchedNetwork::Config cfg;
    cfg.latency = 100 * sim::kNanosecond;
    cfg.bytesPerSecond = 1e12;
    net::SwitchedNetwork net(&eng, "Net", cfg);
    net.plugIn(req.out);
    net.plugIn(memory.top);

    auto id = req.enqueue(0x100, false, memory.top);
    req.tickLater();
    eng.run();
    ASSERT_EQ(req.rspOrder.size(), 1u);
    // Two traversals (request + response): at least 200 ns.
    EXPECT_GE(req.rspTimes[id] - req.sendTimes[id],
              200 * sim::kNanosecond);
}

TEST(SwitchedNetworkTest, BandwidthSerializesMessages)
{
    // Same traffic, 100x less bandwidth: completion must be later.
    sim::VTime fastDone = 0, slowDone = 0;
    for (double bw : {64e9, 0.64e9}) {
        sim::SerialEngine eng;
        Requester req(&eng, "Req");
        FakeMemory memory(&eng, "Mem", 1);
        net::SwitchedNetwork::Config cfg;
        cfg.latency = sim::kNanosecond;
        cfg.bytesPerSecond = bw;
        net::SwitchedNetwork net(&eng, "Net", cfg);
        net.plugIn(req.out);
        net.plugIn(memory.top);
        for (int i = 0; i < 50; i++)
            req.enqueue(0x1000 + i * 64, false, memory.top, 256);
        req.tickLater();
        eng.run();
        EXPECT_EQ(req.rspOrder.size(), 50u);
        (bw > 1e10 ? fastDone : slowDone) = eng.now();
    }
    EXPECT_GT(slowDone, 2 * fastDone);
}

TEST(SwitchedNetworkTest, ReservationPreventsOverflow)
{
    sim::SerialEngine eng;
    Requester req(&eng, "Req");
    // A sink that never drains.
    sim::SerialEngine *ep = &eng;
    class Sink : public sim::TickingComponent
    {
      public:
        explicit Sink(sim::Engine *e)
            : TickingComponent(e, "Sink", sim::Freq::ghz(1))
        {
            in = addPort("In", 4);
        }

        bool tick() override { return false; }

        sim::Port *in;
    } sink(ep);

    net::SwitchedNetwork net(&eng, "Net", {});
    net.plugIn(req.out);
    net.plugIn(sink.in);
    for (int i = 0; i < 20; i++)
        req.enqueue(0x0, false, sink.in);
    req.tickLater();
    eng.run();
    EXPECT_EQ(sink.in->buf().size(), 4u);
    EXPECT_EQ(net.inFlight(), 0u);
}

TEST(SwitchedNetworkTest, CountsTraffic)
{
    sim::SerialEngine eng;
    Requester req(&eng, "Req");
    FakeMemory memory(&eng, "Mem", 1);
    net::SwitchedNetwork net(&eng, "Net", {});
    net.plugIn(req.out);
    net.plugIn(memory.top);
    req.enqueue(0x0, false, memory.top);
    req.tickLater();
    eng.run();
    EXPECT_GT(net.totalBytes(), 0u);
    EXPECT_EQ(net.fields().find("total_msgs")->getter().intVal(), 2);
}
