/**
 * @file
 * Unit tests for the metrics subsystem: ring wraparound, downsample
 * bucket boundaries, histogram percentile math, registry behavior,
 * Prometheus rendering, and range queries past ring capacity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "metrics/registry.hh"
#include "metrics/ring.hh"
#include "metrics/series.hh"

using akita::metrics::AggBucket;
using akita::metrics::Counter;
using akita::metrics::Desc;
using akita::metrics::Gauge;
using akita::metrics::Histogram;
using akita::metrics::Labels;
using akita::metrics::MetricRegistry;
using akita::metrics::MultiResSeries;
using akita::metrics::RawSample;
using akita::metrics::Ring;
using akita::metrics::SeriesConfig;
using akita::metrics::SeriesMode;
using akita::metrics::Type;

TEST(Ring, FillAndWraparound)
{
    Ring<int> r(4);
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.capacity(), 4u);

    for (int i = 1; i <= 4; i++)
        r.push(i);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.at(0), 1);
    EXPECT_EQ(r.back(), 4);

    // Wrap: 1 and 2 are evicted.
    r.push(5);
    r.push(6);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.at(0), 3);
    EXPECT_EQ(r.at(1), 4);
    EXPECT_EQ(r.at(2), 5);
    EXPECT_EQ(r.back(), 6);

    auto snap = r.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front(), 3);
    EXPECT_EQ(snap.back(), 6);

    r.clear();
    EXPECT_TRUE(r.empty());
    r.push(7);
    EXPECT_EQ(r.back(), 7);
}

TEST(Ring, ManyWraps)
{
    Ring<int> r(3);
    for (int i = 0; i < 1000; i++)
        r.push(i);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.at(0), 997);
    EXPECT_EQ(r.at(1), 998);
    EXPECT_EQ(r.at(2), 999);
}

TEST(Series, BucketBoundaryExactlyOnEdge)
{
    SeriesConfig cfg;
    MultiResSeries s(cfg);

    // Samples at 0, 500, 999 fall into the [0,1000) bucket; a sample
    // at exactly 1000 must open the next bucket.
    s.record(0, 0, 1.0);
    s.record(500, 0, 3.0);
    s.record(999, 0, 2.0);
    s.record(1000, 0, 10.0);

    auto buckets = s.query(0, 10000, 1000);
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_EQ(buckets[0].startMs, 0);
    EXPECT_EQ(buckets[0].count, 3u);
    EXPECT_DOUBLE_EQ(buckets[0].min, 1.0);
    EXPECT_DOUBLE_EQ(buckets[0].max, 3.0);
    EXPECT_DOUBLE_EQ(buckets[0].avg(), 2.0);
    EXPECT_DOUBLE_EQ(buckets[0].last, 2.0);
    EXPECT_EQ(buckets[1].startMs, 1000);
    EXPECT_EQ(buckets[1].count, 1u);
    EXPECT_DOUBLE_EQ(buckets[1].last, 10.0);
}

TEST(Series, DownsampleAggregatesPastRawCapacity)
{
    SeriesConfig cfg;
    cfg.rawCapacity = 16; // Tiny: raw history wraps quickly.
    MultiResSeries s(cfg);

    // Record 200 samples, 50 ms apart (4 s of data, 20/bucket) — far
    // more than the 16-sample raw ring holds.
    for (int i = 0; i < 200; i++)
        s.record(i * 50, static_cast<std::uint64_t>(i),
                 static_cast<double>(i));
    EXPECT_EQ(s.totalRecorded(), 200u);
    EXPECT_EQ(s.rawSnapshot().size(), 16u);

    // The 1 s resolution still has every bucket, with correct
    // aggregates computed from ALL samples, not just the retained raw.
    auto buckets = s.query(0, 1000000, 1000);
    ASSERT_EQ(buckets.size(), 10u); // 200*50ms = 10 s of buckets.
    for (std::size_t b = 0; b < buckets.size(); b++) {
        EXPECT_EQ(buckets[b].startMs,
                  static_cast<std::int64_t>(b) * 1000);
        EXPECT_EQ(buckets[b].count, 20u);
        double lo = static_cast<double>(b * 20);
        double hi = lo + 19;
        EXPECT_DOUBLE_EQ(buckets[b].min, lo);
        EXPECT_DOUBLE_EQ(buckets[b].max, hi);
        EXPECT_DOUBLE_EQ(buckets[b].avg(), (lo + hi) / 2);
        EXPECT_DOUBLE_EQ(buckets[b].last, hi);
    }

    // 10 s resolution folds everything into one bucket.
    auto coarse = s.query(0, 1000000, 10000);
    ASSERT_EQ(coarse.size(), 1u);
    EXPECT_EQ(coarse[0].count, 200u);
    EXPECT_DOUBLE_EQ(coarse[0].min, 0.0);
    EXPECT_DOUBLE_EQ(coarse[0].max, 199.0);
}

TEST(Series, RawQueryAndRangeFilter)
{
    SeriesConfig cfg;
    MultiResSeries s(cfg);
    for (int i = 0; i < 10; i++)
        s.record(i * 100, 0, static_cast<double>(i));

    // step < 1000 serves raw samples as single-count buckets.
    auto raw = s.query(200, 500, 1);
    ASSERT_EQ(raw.size(), 4u); // 200, 300, 400, 500.
    EXPECT_DOUBLE_EQ(raw.front().last, 2.0);
    EXPECT_DOUBLE_EQ(raw.back().last, 5.0);
    EXPECT_EQ(raw.front().count, 1u);
}

TEST(Instrument, CounterAndGauge)
{
    Counter c;
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    Gauge g;
    g.set(2.5);
    g.add(-0.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Instrument, HistogramBucketsAndQuantiles)
{
    Histogram h({1.0, 10.0, 100.0});

    // 100 observations uniformly in (0, 1]: all in the first bucket.
    for (int i = 1; i <= 100; i++)
        h.observe(i / 100.0);
    auto s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.counts[0], 100u);
    EXPECT_NEAR(s.sum, 50.5, 1e-9);

    // Median of a uniform (0,1] fill interpolates to ~0.5.
    EXPECT_NEAR(s.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(s.quantile(0.99), 0.99, 0.02);

    // Add 100 in (1, 10]: median now sits on the first bucket edge.
    for (int i = 1; i <= 100; i++)
        h.observe(1.0 + i * 9.0 / 100.0);
    s = h.snapshot();
    EXPECT_EQ(s.count, 200u);
    EXPECT_EQ(s.counts[1], 100u);
    EXPECT_NEAR(s.quantile(0.5), 1.0, 0.05);
    // p75 is halfway through the (1,10] bucket.
    EXPECT_NEAR(s.quantile(0.75), 5.5, 0.1);

    // Overflow observations report the last bound.
    h.observe(1e9);
    s = h.snapshot();
    EXPECT_EQ(s.counts[3], 1u);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(Instrument, HistogramExactBoundGoesToLowerBucket)
{
    Histogram h({1.0, 2.0});
    h.observe(1.0); // le="1" is inclusive (Prometheus semantics).
    auto s = h.snapshot();
    EXPECT_EQ(s.counts[0], 1u);
    EXPECT_EQ(s.counts[1], 0u);
}

TEST(Registry, OwnedInstrumentsAndPrometheusRender)
{
    MetricRegistry reg;

    Desc cd;
    cd.name = "test_events_total";
    cd.help = "Test events.";
    Counter *c = reg.addCounter(cd);
    c->inc(7);

    Desc gd;
    gd.name = "test_occupancy";
    gd.help = "Test occupancy.";
    gd.labels = {{"buffer", "A.TopPort.Buf"}};
    Gauge *g = reg.addGauge(gd);
    g->set(3);

    std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("# HELP test_events_total Test events.\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE test_events_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_events_total 7\n"), std::string::npos);
    EXPECT_NE(
        text.find("test_occupancy{buffer=\"A.TopPort.Buf\"} 3\n"),
        std::string::npos);
}

TEST(Registry, HistogramRenderIsCumulative)
{
    MetricRegistry reg;
    Desc hd;
    hd.name = "test_latency";
    hd.help = "Latency.";
    Histogram *h = reg.addHistogram(hd, {1.0, 10.0});
    h->observe(0.5);
    h->observe(5.0);
    h->observe(100.0);

    std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("test_latency_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_latency_bucket{le=\"10\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_latency_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_latency_count 3\n"), std::string::npos);
}

TEST(Registry, CallbackSamplingAndQuery)
{
    MetricRegistry reg;
    double value = 0;

    Desc d;
    d.name = "test_pull";
    d.help = "Pulled value.";
    d.series = SeriesMode::Full;
    reg.addCallback(d, [&value]() { return value; });

    for (int i = 0; i < 5; i++) {
        value = i;
        reg.samplePass(i * 1000, static_cast<std::uint64_t>(i) * 10,
                       {});
    }
    EXPECT_EQ(reg.version(), 5u);

    auto series = reg.query("test_pull", {}, 0, 1000000, 1000);
    ASSERT_EQ(series.size(), 1u);
    ASSERT_EQ(series[0].points.size(), 5u);
    EXPECT_DOUBLE_EQ(series[0].points[2].last, 2.0);
    EXPECT_EQ(series[0].points[2].startMs, 2000);
}

TEST(Registry, LockedCallbacksBatchUnderOneLock)
{
    MetricRegistry reg;
    int lockCalls = 0;

    for (int i = 0; i < 3; i++) {
        Desc d;
        d.name = "test_locked_" + std::to_string(i);
        d.needsLock = true;
        reg.addCallback(d, []() { return 1.0; });
    }
    Desc free_;
    free_.name = "test_free";
    reg.addCallback(free_, []() { return 2.0; });

    reg.samplePass(0, 0, [&lockCalls](const std::function<void()> &fn) {
        lockCalls++;
        fn();
    });
    // All three locked callbacks evaluated inside a single lock hold.
    EXPECT_EQ(lockCalls, 1);
}

TEST(Registry, LabelFilterAndRemove)
{
    MetricRegistry reg;
    Desc a;
    a.name = "test_multi";
    a.labels = {{"component", "A"}};
    a.series = SeriesMode::Full;
    std::uint64_t idA = reg.addPushed(a);

    Desc b;
    b.name = "test_multi";
    b.labels = {{"component", "B"}};
    b.series = SeriesMode::Full;
    std::uint64_t idB = reg.addPushed(b);

    reg.recordPushed(idA, 100, 0, 1.0);
    reg.recordPushed(idB, 100, 0, 2.0);

    auto all = reg.query("test_multi", {}, 0, 1000, 1);
    EXPECT_EQ(all.size(), 2u);
    auto onlyB =
        reg.query("test_multi", {{"component", "B"}}, 0, 1000, 1);
    ASSERT_EQ(onlyB.size(), 1u);
    EXPECT_DOUBLE_EQ(onlyB[0].points.at(0).last, 2.0);

    EXPECT_TRUE(reg.remove(idA));
    EXPECT_FALSE(reg.remove(idA));
    EXPECT_EQ(reg.query("test_multi", {}, 0, 1000, 1).size(), 1u);
}

TEST(Registry, WaitForSampleWakesOnPass)
{
    MetricRegistry reg;
    std::uint64_t seen = reg.version();

    std::thread waker([&reg]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        reg.samplePass(0, 0, {});
    });
    std::uint64_t v = reg.waitForSample(seen, 2000);
    waker.join();
    EXPECT_GT(v, seen);

    // Timeout path: no pass happens, returns within the timeout.
    std::uint64_t v2 = reg.waitForSample(v, 50);
    EXPECT_EQ(v2, v);
}

TEST(Registry, LatestValues)
{
    MetricRegistry reg;
    Desc d;
    d.name = "test_gauge";
    Gauge *g = reg.addGauge(d);
    g->set(4.5);
    reg.samplePass(123, 456, {});

    auto latest = reg.latest("test_gauge");
    ASSERT_EQ(latest.size(), 1u);
    EXPECT_DOUBLE_EQ(latest[0].value, 4.5);
    EXPECT_EQ(latest[0].wallMs, 123);
    EXPECT_EQ(latest[0].simPs, 456u);
}
