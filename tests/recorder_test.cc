/**
 * @file
 * Flight-recorder tests: segment roundtrip, ring wrap-around, crash
 * recovery (truncated and garbled tails), and the FlightRecorder
 * encode/decode/query layer.
 *
 * The SegmentCrash suite is also registered as its own ctest case
 * (recorder_crash_recovery) so CI runs it under ASan explicitly.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "metrics/registry.hh"
#include "recorder/recorder.hh"
#include "recorder/segment.hh"

using namespace akita;
using namespace akita::recorder;

namespace
{

/** A unique path under /tmp, removed on destruction. */
struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &tag)
    {
        path = "/tmp/akita_recorder_test_" + tag + "_" +
               std::to_string(::getpid()) + ".seg";
        ::unlink(path.c_str());
    }

    ~TempFile() { ::unlink(path.c_str()); }
};

/** A payload sized so the whole frame (header 40 + payload) is 64 B. */
std::string
payload64(int i)
{
    char buf[25];
    std::snprintf(buf, sizeof(buf), "record-%016d", i);
    return std::string(buf, 24);
}

constexpr std::uint64_t kFrame = 64; // 40-byte header + 24-byte payload.

/** Damages @p len bytes at @p offset of @p path in place. */
void
garbleFile(const std::string &path, off_t offset, std::size_t len)
{
    int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0) << strerror(errno);
    std::vector<std::uint8_t> junk(len, 0x5A);
    ASSERT_EQ(::pwrite(fd, junk.data(), len, offset),
              static_cast<ssize_t>(len));
    ::close(fd);
}

} // namespace

// ---------------------------------------------------------------------
// Segment roundtrip
// ---------------------------------------------------------------------

TEST(SegmentRoundtrip, WriteScanReadBack)
{
    TempFile f("roundtrip");
    std::string err;
    auto w = SegmentWriter::create(f.path, 0, &err);
    ASSERT_NE(w, nullptr) << err;
    EXPECT_EQ(w->dataBytes(), 64u * 1024);

    for (int i = 0; i < 10; i++) {
        std::string p = payload64(i);
        ASSERT_TRUE(w->append(RecordType::EngineEvent, p.data(),
                              p.size(), 1000 + i));
    }
    EXPECT_EQ(w->nextSeq(), 10u);
    EXPECT_EQ(w->cursor(), 10 * kFrame);
    w->sync(true);

    // The live writer can scan its own window...
    w->scan([&](const std::vector<RecordView> &recs,
                const ScanStats &stats) {
        EXPECT_EQ(recs.size(), 10u);
        EXPECT_EQ(stats.framesFound, 10u);
    });

    // ...and an independent reader recovers the same records.
    auto r = SegmentReader::open(f.path, &err);
    ASSERT_NE(r, nullptr) << err;
    EXPECT_EQ(r->header().magic, kSegmentMagic);
    EXPECT_EQ(r->header().version, kSegmentVersion);
    ASSERT_EQ(r->records().size(), 10u);
    for (int i = 0; i < 10; i++) {
        const RecordView &rec = r->records()[static_cast<size_t>(i)];
        EXPECT_EQ(rec.seq, static_cast<std::uint64_t>(i));
        EXPECT_EQ(rec.type, RecordType::EngineEvent);
        EXPECT_EQ(rec.wallMs, 1000 + i);
        EXPECT_EQ(std::string(reinterpret_cast<const char *>(rec.payload),
                              rec.payloadLen),
                  payload64(i));
    }
    EXPECT_EQ(r->firstWallMs(), 1000);
    EXPECT_EQ(r->lastWallMs(), 1009);
}

TEST(SegmentRoundtrip, WrapKeepsContiguousNewestWindow)
{
    TempFile f("wrap");
    std::string err;
    auto w = SegmentWriter::create(f.path, 0, &err);
    ASSERT_NE(w, nullptr) << err;

    // 64 KB ring / 64 B frames = 1024 slots; 1500 appends wrap once.
    const int n = 1500;
    for (int i = 0; i < n; i++) {
        std::string p = payload64(i);
        ASSERT_TRUE(
            w->append(RecordType::EngineEvent, p.data(), p.size(), i));
    }
    w->sync(true);
    w.reset();

    auto r = SegmentReader::open(f.path, &err);
    ASSERT_NE(r, nullptr) << err;
    const auto &recs = r->records();
    ASSERT_FALSE(recs.empty());
    // The window ends at the newest record and is seq-contiguous.
    EXPECT_EQ(recs.back().seq, static_cast<std::uint64_t>(n - 1));
    for (std::size_t i = 1; i < recs.size(); i++)
        EXPECT_EQ(recs[i].seq, recs[i - 1].seq + 1);
    // Everything the ring can still hold is recovered.
    EXPECT_GE(recs.size(), 1000u);
    EXPECT_GE(recs.front().seq, static_cast<std::uint64_t>(n) - 1024);
    // Frames from the overwritten epoch are stale, not window members.
    EXPECT_EQ(r->stats().framesFound - recs.size(),
              r->stats().staleDropped);
}

TEST(SegmentRoundtrip, OversizedPayloadDropped)
{
    TempFile f("oversize");
    std::string err;
    auto w = SegmentWriter::create(f.path, 0, &err);
    ASSERT_NE(w, nullptr) << err;

    std::vector<std::uint8_t> big(w->dataBytes(), 0xAB);
    EXPECT_FALSE(
        w->append(RecordType::MetricsPass, big.data(), big.size(), 1));
    EXPECT_EQ(w->nextSeq(), 0u) << "dropped appends consume no seq";

    std::string p = payload64(0);
    EXPECT_TRUE(
        w->append(RecordType::EngineEvent, p.data(), p.size(), 2));
    EXPECT_EQ(w->nextSeq(), 1u);
}

TEST(SegmentRoundtrip, CreateRejectsBadPath)
{
    std::string err;
    auto w = SegmentWriter::create("/nonexistent-dir/x.seg", 0, &err);
    EXPECT_EQ(w, nullptr);
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// Crash recovery (the SegmentCrash.* filter runs as its own ctest case)
// ---------------------------------------------------------------------

TEST(SegmentCrash, TruncatedMidRecordRecoversPrefix)
{
    TempFile f("truncate");
    std::string err;
    {
        auto w = SegmentWriter::create(f.path, 0, &err);
        ASSERT_NE(w, nullptr) << err;
        for (int i = 0; i < 20; i++) {
            std::string p = payload64(i);
            ASSERT_TRUE(w->append(RecordType::EngineEvent, p.data(),
                                  p.size(), i));
        }
        w->sync(true);
    }

    // Cut the file mid-way through record 10's payload — the shape a
    // crash during a tail write (or a copy of a live file) leaves.
    off_t cut = static_cast<off_t>(kSegmentDataOffset + 10 * kFrame + 13);
    ASSERT_EQ(::truncate(f.path.c_str(), cut), 0) << strerror(errno);

    auto r = SegmentReader::open(f.path, &err);
    ASSERT_NE(r, nullptr) << err;
    ASSERT_EQ(r->records().size(), 10u);
    EXPECT_EQ(r->records().front().seq, 0u);
    EXPECT_EQ(r->records().back().seq, 9u);
    for (int i = 0; i < 10; i++) {
        const RecordView &rec = r->records()[static_cast<size_t>(i)];
        EXPECT_EQ(std::string(reinterpret_cast<const char *>(rec.payload),
                              rec.payloadLen),
                  payload64(i));
    }
}

TEST(SegmentCrash, GarbledTailRecoversToLastValidCrc)
{
    TempFile f("garble");
    std::string err;
    {
        auto w = SegmentWriter::create(f.path, 0, &err);
        ASSERT_NE(w, nullptr) << err;
        for (int i = 0; i < 20; i++) {
            std::string p = payload64(i);
            ASSERT_TRUE(w->append(RecordType::EngineEvent, p.data(),
                                  p.size(), i));
        }
        w->sync(true);
    }

    // Scribble over the payloads of the last two records (a torn tail):
    // their CRCs fail, so the window must end at record 17.
    garbleFile(f.path,
               static_cast<off_t>(kSegmentDataOffset + 18 * kFrame + 40),
               8);
    garbleFile(f.path,
               static_cast<off_t>(kSegmentDataOffset + 19 * kFrame + 40),
               8);

    auto r = SegmentReader::open(f.path, &err);
    ASSERT_NE(r, nullptr) << err;
    ASSERT_EQ(r->records().size(), 18u);
    EXPECT_EQ(r->records().back().seq, 17u);
    EXPECT_EQ(r->stats().framesFound, 18u);
    EXPECT_GT(r->stats().bytesSkipped, 0u);
}

TEST(SegmentCrash, GarbledMidWindowKeepsNewestSuffix)
{
    TempFile f("midgarble");
    std::string err;
    {
        auto w = SegmentWriter::create(f.path, 0, &err);
        ASSERT_NE(w, nullptr) << err;
        for (int i = 0; i < 20; i++) {
            std::string p = payload64(i);
            ASSERT_TRUE(w->append(RecordType::EngineEvent, p.data(),
                                  p.size(), i));
        }
        w->sync(true);
    }

    // Destroy record 15. Records 16..19 are still valid and contiguous
    // with the newest write — recovery keeps the suffix, never a stale
    // run separated from the present by a hole.
    garbleFile(f.path,
               static_cast<off_t>(kSegmentDataOffset + 15 * kFrame + 40),
               8);

    auto r = SegmentReader::open(f.path, &err);
    ASSERT_NE(r, nullptr) << err;
    ASSERT_EQ(r->records().size(), 4u);
    EXPECT_EQ(r->records().front().seq, 16u);
    EXPECT_EQ(r->records().back().seq, 19u);
    EXPECT_EQ(r->stats().staleDropped, 15u);
}

TEST(SegmentCrash, CorruptHeaderRejected)
{
    TempFile f("badheader");
    std::string err;
    {
        auto w = SegmentWriter::create(f.path, 0, &err);
        ASSERT_NE(w, nullptr) << err;
        std::string p = payload64(0);
        ASSERT_TRUE(
            w->append(RecordType::EngineEvent, p.data(), p.size(), 1));
        w->sync(true);
    }

    garbleFile(f.path, 8, 8); // segmentBytes/dataOffset fields.
    auto r = SegmentReader::open(f.path, &err);
    EXPECT_EQ(r, nullptr);
    EXPECT_NE(err.find("header"), std::string::npos) << err;
}

TEST(SegmentCrash, JunkFileRejected)
{
    TempFile f("junk");
    {
        FILE *fp = std::fopen(f.path.c_str(), "wb");
        ASSERT_NE(fp, nullptr);
        for (int i = 0; i < 8192; i++)
            std::fputc(i & 0xFF, fp);
        std::fclose(fp);
    }
    std::string err;
    auto r = SegmentReader::open(f.path, &err);
    EXPECT_EQ(r, nullptr);
    EXPECT_FALSE(err.empty());
}

TEST(SegmentCrash, LiveFileReadableWhileWriterAppends)
{
    // The reader must work on a file the writer still has mapped —
    // the post-mortem-of-a-live-sim (or SIGKILL page-cache) story.
    TempFile f("live");
    std::string err;
    auto w = SegmentWriter::create(f.path, 0, &err);
    ASSERT_NE(w, nullptr) << err;
    for (int i = 0; i < 5; i++) {
        std::string p = payload64(i);
        ASSERT_TRUE(
            w->append(RecordType::EngineEvent, p.data(), p.size(), i));
    }
    // No sync: dirty pages reach the reader through the page cache.
    auto r = SegmentReader::open(f.path, &err);
    ASSERT_NE(r, nullptr) << err;
    EXPECT_EQ(r->records().size(), 5u);
}

// ---------------------------------------------------------------------
// FlightRecorder: dictionary, pass encoding, query
// ---------------------------------------------------------------------

namespace
{

metrics::Desc
gaugeDesc(const std::string &name, const metrics::Labels &labels)
{
    metrics::Desc d;
    d.name = name;
    d.labels = labels;
    return d;
}

} // namespace

TEST(FlightRecorder, TeeAndQueryRoundtrip)
{
    TempFile f("tee");
    FlightRecorder::Options opts;
    opts.path = f.path;
    std::string err;
    auto rec = FlightRecorder::create(opts, &err);
    ASSERT_NE(rec, nullptr) << err;

    metrics::Desc a = gaugeDesc("occ", {{"component", "L2[0]"}});
    metrics::Desc b = gaugeDesc("occ", {{"component", "L2[1]"}});
    metrics::Desc c = gaugeDesc("rate", {});

    for (int pass = 0; pass < 3; pass++) {
        std::vector<metrics::SampledValue> v;
        v.push_back({&a, 1.0 + pass, 0, 0});
        v.push_back({&b, 10.0 + pass, 0, 0});
        v.push_back({&c, 100.0 + pass, 0, 0});
        rec->recordMetricsPass(1000 + pass * 10,
                               static_cast<std::uint64_t>(pass) * 500, v);
    }
    rec->recordEvent("pause", 1040, 2000);
    rec->sync(true);

    // Unfiltered: both "occ" series come back, 3 points each.
    auto series = rec->query("occ", {}, 0,
                             std::numeric_limits<std::int64_t>::max());
    ASSERT_EQ(series.size(), 2u);
    for (const auto &s : series) {
        EXPECT_EQ(s.name, "occ");
        ASSERT_EQ(s.points.size(), 3u);
        EXPECT_EQ(s.points[0].wallMs, 1000);
        EXPECT_EQ(s.points[2].wallMs, 1020);
        EXPECT_EQ(s.points[1].simPs, 500u);
    }

    // Label filter selects one series.
    auto one = rec->query("occ", {{"component", "L2[1]"}}, 0,
                          std::numeric_limits<std::int64_t>::max());
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0].points[0].value, 10.0);

    // Time range clips points.
    auto clipped = rec->query("rate", {}, 1005, 1015);
    ASSERT_EQ(clipped.size(), 1u);
    ASSERT_EQ(clipped[0].points.size(), 1u);
    EXPECT_DOUBLE_EQ(clipped[0].points[0].value, 101.0);

    // Unknown name: nothing.
    EXPECT_TRUE(rec->query("nope", {}, 0, 1 << 30).empty());

    FlightRecorder::Info info = rec->info();
    EXPECT_EQ(info.path, f.path);
    EXPECT_EQ(info.dictEntries, 3u);
    // Meta + 3 Dict + 3 passes + 1 event.
    EXPECT_EQ(info.nextSeq, 8u);
    EXPECT_EQ(info.windowRecords, 8u);
    EXPECT_EQ(info.droppedAppends, 0u);
    EXPECT_GT(rec->generation(), 0u);
}

TEST(FlightRecorder, SurvivesSegmentReaderPostMortem)
{
    // End to end: tee in, "crash" (no graceful close path taken beyond
    // sync), recover with the offline reader, decode passes by hand.
    TempFile f("postmortem");
    FlightRecorder::Options opts;
    opts.path = f.path;
    std::string err;
    auto rec = FlightRecorder::create(opts, &err);
    ASSERT_NE(rec, nullptr) << err;

    metrics::Desc a = gaugeDesc("x", {});
    std::vector<metrics::SampledValue> v;
    v.push_back({&a, 42.0, 0, 0});
    rec->recordMetricsPass(123, 456, v);
    rec->recordHangReport("{\"verdict\":\"cycle\"}", 124, 456);
    rec->sync(true);

    auto r = SegmentReader::open(f.path, &err);
    ASSERT_NE(r, nullptr) << err;
    bool sawDict = false, sawPass = false, sawHang = false;
    for (const auto &view : r->records()) {
        if (view.type == RecordType::Dict)
            sawDict = true;
        if (view.type == RecordType::HangReport) {
            sawHang = true;
            EXPECT_EQ(std::string(reinterpret_cast<const char *>(
                                      view.payload),
                                  view.payloadLen),
                      "{\"verdict\":\"cycle\"}");
        }
        if (view.type == RecordType::MetricsPass) {
            DecodedPass pass;
            ASSERT_TRUE(decodeMetricsPass(view.payload, view.payloadLen,
                                          &pass));
            EXPECT_EQ(pass.wallMs, 123);
            EXPECT_EQ(pass.simPs, 456u);
            ASSERT_EQ(pass.values.size(), 1u);
            EXPECT_DOUBLE_EQ(pass.values[0].value, 42.0);
            sawPass = true;
        }
    }
    EXPECT_TRUE(sawDict);
    EXPECT_TRUE(sawPass);
    EXPECT_TRUE(sawHang);
}

TEST(FlightRecorder, DecodeRejectsMalformedPass)
{
    std::uint8_t buf[32];
    std::memset(buf, 0, sizeof(buf));
    buf[16] = 200; // count = 200, but no bytes follow.
    DecodedPass out;
    EXPECT_FALSE(decodeMetricsPass(buf, 20, &out));
    EXPECT_FALSE(decodeMetricsPass(buf, 10, &out)) << "short header";
    // A count of zero with exactly a header is valid.
    buf[16] = 0;
    EXPECT_TRUE(decodeMetricsPass(buf, 20, &out));
    EXPECT_TRUE(out.values.empty());
}

TEST(FlightRecorder, DictSurvivesRingAging)
{
    // Write far past one ring circumference; the dictionary must be
    // re-emitted so the recoverable window still resolves series names.
    TempFile f("aging");
    FlightRecorder::Options opts;
    opts.path = f.path;
    opts.segmentBytes = 0; // Floors to the minimum 64 KB ring.
    std::string err;
    auto rec = FlightRecorder::create(opts, &err);
    ASSERT_NE(rec, nullptr) << err;

    metrics::Desc a = gaugeDesc("aged", {{"component", "X"}});
    for (int pass = 0; pass < 3000; pass++) {
        std::vector<metrics::SampledValue> v;
        v.push_back({&a, static_cast<double>(pass), 0, 0});
        rec->recordMetricsPass(pass, static_cast<std::uint64_t>(pass), v);
    }

    FlightRecorder::Info info = rec->info();
    EXPECT_GT(info.cursor, info.dataBytes * 2) << "must have wrapped";

    auto series = rec->query("aged", {{"component", "X"}}, 0,
                             std::numeric_limits<std::int64_t>::max());
    ASSERT_EQ(series.size(), 1u) << "dict aged out of the window";
    ASSERT_FALSE(series[0].points.empty());
    EXPECT_DOUBLE_EQ(series[0].points.back().value, 2999.0);
}
