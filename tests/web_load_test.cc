/**
 * @file
 * API load smoke test: a small fleet of keep-alive clients churns
 * against a live monitored simulation and asserts that no response is
 * dropped or garbled. This is the CI-sized version of
 * bench_api_load — correctness under concurrency, not throughput.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gpu/platform.hh"
#include "json/json.hh"
#include "rtm/monitor.hh"
#include "web/client.hh"

using namespace akita;

namespace
{

gpu::KernelDescriptor
loadKernel()
{
    gpu::KernelDescriptor k;
    k.name = "load";
    k.numWorkGroups = 64;
    k.wavefrontsPerWG = 2;
    k.trace = [](std::uint32_t wg, std::uint32_t wf) {
        std::vector<gpu::WfOp> ops;
        for (int i = 0; i < 4; i++) {
            ops.push_back(gpu::WfOp::load(
                0x10000ull + (wg * 64 + wf * 16 + i) * 4096, 64, 2));
        }
        return ops;
    };
    return k;
}

} // namespace

TEST(WebLoad, KeepAliveChurnDropsNothing)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::applyEngineEnv(cfg); // CI TSan job selects the engine.
    gpu::Platform plat(cfg);

    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    mcfg.sampleIntervalMs = 10;
    mcfg.hangThresholdSec = 10.0;
    rtm::Monitor mon(mcfg);
    mon.registerEngine(&plat.engine());
    for (auto *c : plat.components())
        mon.registerComponent(c);
    ASSERT_TRUE(mon.startServer());

    gpu::KernelDescriptor kernel = loadKernel();
    plat.launchKernel(&kernel);
    std::thread sim([&]() { plat.run(); });

    // Each client loops over the hot read endpoints on one keep-alive
    // connection, reconnecting every few requests (churn); every
    // response must be a well-formed 200 with a parseable body.
    constexpr int kClients = 6;
    constexpr int kReqsPerClient = 40;
    const char *targets[] = {
        "/api/components",
        "/api/buffers?sort=percent&top=20",
        "/api/status",
        "/api/progress",
        "/metrics",
    };
    std::atomic<int> good{0};
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; c++) {
        clients.emplace_back([&, c]() {
            web::PersistentClient client("127.0.0.1",
                                         mon.serverPort());
            for (int i = 0; i < kReqsPerClient; i++) {
                const char *target = targets[(c + i) % 5];
                auto r = client.get(target);
                if (!r) {
                    errors[c] = std::string("no response for ") +
                                target;
                    return;
                }
                if (r->status != 200) {
                    errors[c] = std::string("status ") +
                                std::to_string(r->status) + " for " +
                                target;
                    return;
                }
                bool isJson =
                    r->headers.count("content-type") &&
                    r->headers.at("content-type") ==
                        "application/json";
                if (isJson) {
                    try {
                        json::Json::parse(r->body);
                    } catch (const json::ParseError &e) {
                        errors[c] = std::string("garbled JSON from ") +
                                    target + ": " + e.what();
                        return;
                    }
                } else if (r->body.empty()) {
                    errors[c] = std::string("empty body from ") +
                                target;
                    return;
                }
                good++;
                if (i % 7 == 6)
                    client.disconnect(); // Churn: force reconnects.
            }
        });
    }
    for (auto &t : clients)
        t.join();
    sim.join();
    mon.stopServer();

    for (int c = 0; c < kClients; c++)
        EXPECT_EQ(errors[c], "") << "client " << c;
    EXPECT_EQ(good.load(), kClients * kReqsPerClient);
}
