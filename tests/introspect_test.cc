/**
 * @file
 * Unit tests for the introspection layer (Value, FieldSet, Inspectable).
 */

#include <gtest/gtest.h>

#include "introspect/field.hh"
#include "introspect/value.hh"

using akita::introspect::FieldSet;
using akita::introspect::Inspectable;
using akita::introspect::Value;

TEST(Value, NullDefault)
{
    Value v;
    EXPECT_TRUE(v.isNull());
    EXPECT_EQ(v.numeric(), 0.0);
    EXPECT_STREQ(v.typeName(), "null");
}

TEST(Value, ScalarKinds)
{
    EXPECT_EQ(Value::ofBool(true).numeric(), 1.0);
    EXPECT_EQ(Value::ofBool(false).numeric(), 0.0);
    EXPECT_EQ(Value::ofInt(-7).intVal(), -7);
    EXPECT_EQ(Value::ofInt(-7).numeric(), -7.0);
    EXPECT_DOUBLE_EQ(Value::ofFloat(2.5).numeric(), 2.5);
    EXPECT_EQ(Value::ofStr("x").strVal(), "x");
    EXPECT_EQ(Value::ofStr("x").numeric(), 0.0);
}

TEST(Value, TypeNames)
{
    EXPECT_STREQ(Value::ofBool(true).typeName(), "bool");
    EXPECT_STREQ(Value::ofInt(1).typeName(), "int");
    EXPECT_STREQ(Value::ofFloat(1).typeName(), "float");
    EXPECT_STREQ(Value::ofStr("").typeName(), "string");
    EXPECT_STREQ(Value::ofList({}).typeName(), "list");
    EXPECT_STREQ(Value::ofDict({}).typeName(), "dict");
}

TEST(Value, ContainerSizeIsNumericProjection)
{
    // The paper: "for containers such as lists and dictionaries, the
    // plot shows the container sizes".
    Value list = Value::ofList({Value::ofInt(1), Value::ofInt(2)});
    EXPECT_EQ(list.numeric(), 2.0);

    Value dict = Value::ofDict({{"a", Value::ofInt(1)}});
    EXPECT_EQ(dict.numeric(), 1.0);
}

TEST(Value, DeclaredSizeOverridesElidedElements)
{
    // A container of 1000 entries serialized with only 3 samples must
    // still plot as 1000.
    Value v = Value::ofContainer(1000, {Value::ofInt(0), Value::ofInt(1),
                                        Value::ofInt(2)});
    EXPECT_EQ(v.size(), 1000);
    EXPECT_EQ(v.numeric(), 1000.0);
    EXPECT_EQ(v.items().size(), 3u);
}

TEST(FieldSet, DeclareAndFind)
{
    FieldSet fs;
    int x = 5;
    fs.declare("x", [&x]() { return Value::ofInt(x); });
    ASSERT_NE(fs.find("x"), nullptr);
    EXPECT_EQ(fs.find("x")->getter().intVal(), 5);
    x = 9;
    EXPECT_EQ(fs.find("x")->getter().intVal(), 9);
    EXPECT_EQ(fs.find("missing"), nullptr);
}

TEST(FieldSet, RedeclareReplacesGetter)
{
    FieldSet fs;
    fs.declare("f", []() { return Value::ofInt(1); });
    fs.declare("f", []() { return Value::ofInt(2); });
    EXPECT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs.find("f")->getter().intVal(), 2);
}

TEST(FieldSet, DeclarationOrderPreserved)
{
    FieldSet fs;
    fs.declare("b", []() { return Value(); });
    fs.declare("a", []() { return Value(); });
    fs.declare("c", []() { return Value(); });
    ASSERT_EQ(fs.all().size(), 3u);
    EXPECT_EQ(fs.all()[0].name, "b");
    EXPECT_EQ(fs.all()[1].name, "a");
    EXPECT_EQ(fs.all()[2].name, "c");
}

TEST(FieldSet, TypedConvenienceDeclarations)
{
    FieldSet fs;
    std::int64_t i = 3;
    double d = 1.5;
    bool b = true;
    std::string s = "str";
    fs.declareInt("i", &i);
    fs.declareFloat("d", &d);
    fs.declareBool("b", &b);
    fs.declareStr("s", &s);

    EXPECT_EQ(fs.find("i")->getter().intVal(), 3);
    EXPECT_DOUBLE_EQ(fs.find("d")->getter().floatVal(), 1.5);
    EXPECT_TRUE(fs.find("b")->getter().boolVal());
    EXPECT_EQ(fs.find("s")->getter().strVal(), "str");

    i = 10;
    s = "mut";
    EXPECT_EQ(fs.find("i")->getter().intVal(), 10);
    EXPECT_EQ(fs.find("s")->getter().strVal(), "mut");
}

namespace
{

class Widget : public Inspectable
{
  public:
    Widget()
    {
        declareField("count",
                     [this]() { return Value::ofInt(count_); });
    }

    void bump() { count_++; }

  private:
    std::int64_t count_ = 0;
};

} // namespace

TEST(Inspectable, FieldsReflectLiveState)
{
    Widget w;
    EXPECT_EQ(w.fields().find("count")->getter().intVal(), 0);
    w.bump();
    w.bump();
    EXPECT_EQ(w.fields().find("count")->getter().intVal(), 2);
}

TEST(Inspectable, LateRegistrationThroughMutableFields)
{
    Widget w;
    w.mutableFields().declare("extra",
                              []() { return Value::ofStr("late"); });
    EXPECT_EQ(w.fields().size(), 2u);
    EXPECT_EQ(w.fields().find("extra")->getter().strVal(), "late");
}
