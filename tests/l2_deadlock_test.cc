/**
 * @file
 * Reproduction of the paper's case study 2: the L2 write-buffer
 * deadlock. The legacy configuration must deadlock under write-heavy
 * thrashing; the fixed (default) configuration must complete the same
 * workload. This is the bug that was found with AkitaRTM and patched
 * upstream.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/l2cache.hh"
#include "mem_harness.hh"

using namespace akita;
using namespace akita::mem;
using akita::test::Requester;

namespace
{

struct Rig
{
    sim::SerialEngine eng;
    Requester req{&eng, "Req", 8};
    L2Cache l2;
    DramController dram;
    sim::DirectConnection top{&eng, "Top", sim::kNanosecond};
    sim::DirectConnection bottom{&eng, "Bottom", sim::kNanosecond};

    explicit Rig(bool legacy)
        : l2(&eng, "L2", sim::Freq::ghz(1), config(legacy)),
          dram(&eng, "DRAM", sim::Freq::ghz(1), dramConfig())
    {
        top.plugIn(req.out);
        top.plugIn(l2.topPort());
        bottom.plugIn(l2.bottomPort());
        bottom.plugIn(l2.wbPort());
        bottom.plugIn(dram.topPort());
        l2.setDownstream(dram.topPort());
    }

    static L2Cache::Config
    config(bool legacy)
    {
        L2Cache::Config cfg;
        cfg.numSets = 1; // Maximum thrash: every line shares the set.
        cfg.ways = 4;
        cfg.mshrCapacity = 16;
        cfg.wbInCapacity = 2;
        cfg.wbFetchedCapacity = 2;
        cfg.installCapacity = 2;
        cfg.dramWriteInflightMax = 1;
        cfg.legacyWriteBufferDeadlock = legacy;
        return cfg;
    }

    static DramController::Config
    dramConfig()
    {
        DramController::Config cfg;
        cfg.accessLatency = 40;
        cfg.reqPerCycle = 1;
        return cfg;
    }

    /** Write-allocate traffic over many lines: every fill evicts a
     * dirty victim, keeping both write-buffer queues under pressure. */
    int
    issueThrashingWrites(int n)
    {
        for (int i = 0; i < n; i++)
            req.enqueue(0x10000ull + static_cast<std::uint64_t>(i) * 64,
                        true, l2.topPort());
        req.tickLater();
        return n;
    }
};

} // namespace

TEST(L2Deadlock, FixedConfigurationCompletes)
{
    Rig rig(/*legacy=*/false);
    int n = rig.issueThrashingWrites(200);
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), static_cast<std::size_t>(n));
    EXPECT_FALSE(rig.l2.evictionStalled());
}

TEST(L2Deadlock, LegacyConfigurationDeadlocks)
{
    Rig rig(/*legacy=*/true);
    int n = rig.issueThrashingWrites(200);
    rig.eng.run(); // Drains: every component asleep, work incomplete.

    EXPECT_LT(rig.req.rspOrder.size(), static_cast<std::size_t>(n))
        << "legacy write buffer should deadlock before completion";

    // The hang signature the paper's case study reads off the
    // bottleneck analyzer: residue in the L2's internal queues.
    std::size_t residue = 0;
    for (sim::Buffer *b : rig.l2.buffers())
        residue += b->size();
    EXPECT_GT(residue, 0u);
    EXPECT_TRUE(rig.l2.evictionStalled());
}

TEST(L2Deadlock, LegacyDeadlockIsStableUnderKicks)
{
    // Waking the components (the dashboard "Tick" button) must NOT
    // resolve a true deadlock — ticks run, no progress happens. This is
    // what distinguishes a deadlock from a sleeping-but-healthy state
    // in the debugging workflow.
    Rig rig(/*legacy=*/true);
    rig.issueThrashingWrites(200);
    rig.eng.run();

    std::size_t before = rig.req.rspOrder.size();
    for (int kick = 0; kick < 5; kick++) {
        rig.l2.wake();
        rig.dram.wake();
        rig.req.wake();
        rig.eng.run();
    }
    EXPECT_EQ(rig.req.rspOrder.size(), before);
}

TEST(L2Deadlock, FixedHandlesReadWriteMix)
{
    Rig rig(/*legacy=*/false);
    for (int i = 0; i < 100; i++) {
        bool write = (i % 3) != 0;
        rig.req.enqueue(0x20000ull + static_cast<std::uint64_t>(i) * 64,
                        write, rig.l2.topPort());
    }
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.req.rspOrder.size(), 100u);
}

TEST(L2Deadlock, LegacyIdenticalToFixedWithoutPressure)
{
    // With a large, non-thrashing working set the legacy code path is
    // never exercised; both variants must produce identical traffic.
    for (bool legacy : {false, true}) {
        L2Cache::Config cfg;
        cfg.numSets = 64;
        cfg.ways = 8;
        cfg.legacyWriteBufferDeadlock = legacy;

        sim::SerialEngine eng;
        Requester req(&eng, "Req");
        L2Cache l2(&eng, "L2", sim::Freq::ghz(1), cfg);
        DramController dram(&eng, "DRAM", sim::Freq::ghz(1), {});
        sim::DirectConnection top(&eng, "Top", sim::kNanosecond);
        sim::DirectConnection bottom(&eng, "Bottom", sim::kNanosecond);
        top.plugIn(req.out);
        top.plugIn(l2.topPort());
        bottom.plugIn(l2.bottomPort());
        bottom.plugIn(l2.wbPort());
        bottom.plugIn(dram.topPort());
        l2.setDownstream(dram.topPort());

        for (int i = 0; i < 50; i++)
            req.enqueue(0x1000ull + static_cast<std::uint64_t>(i) * 64,
                        i % 2 == 0, l2.topPort());
        req.tickLater();
        eng.run();
        EXPECT_EQ(req.rspOrder.size(), 50u) << "legacy=" << legacy;
    }
}
