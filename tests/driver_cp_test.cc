/**
 * @file
 * Focused unit tests for the control plane: driver partitioning,
 * sequential kernel queueing, auto-stop behavior, and the command
 * processor's dispatch/report logic.
 */

#include <gtest/gtest.h>

#include "gpu/cp.hh"
#include "gpu/cu.hh"
#include "gpu/driver.hh"
#include "sim/sim.hh"

using namespace akita;
using namespace akita::gpu;

namespace
{

KernelDescriptor
computeKernel(std::uint32_t wgs, std::uint32_t cycles = 8)
{
    KernelDescriptor k;
    k.name = "compute";
    k.numWorkGroups = wgs;
    k.wavefrontsPerWG = 2;
    k.trace = [cycles](std::uint32_t, std::uint32_t) {
        return std::vector<WfOp>{WfOp::compute(cycles)};
    };
    return k;
}

/** Driver + N CPs, each with M pure-compute CUs. */
struct ControlRig
{
    sim::SerialEngine eng;
    Driver driver{&eng, "Driver", sim::Freq::ghz(1)};
    std::vector<std::unique_ptr<CommandProcessor>> cps;
    std::vector<std::unique_ptr<ComputeUnit>> cus;
    sim::DirectConnection driverConn{&eng, "DriverConn",
                                     sim::kNanosecond};
    std::vector<std::unique_ptr<sim::DirectConnection>> ctrlConns;

    ControlRig(std::size_t num_cps, std::size_t cus_per_cp)
    {
        driverConn.plugIn(driver.gpuPort());
        for (std::size_t g = 0; g < num_cps; g++) {
            auto cp = std::make_unique<CommandProcessor>(
                &eng, "CP" + std::to_string(g), sim::Freq::ghz(1),
                CommandProcessor::Config{});
            driverConn.plugIn(cp->toDriverPort());
            driver.addGpu(cp->toDriverPort());

            auto conn = std::make_unique<sim::DirectConnection>(
                &eng, "Ctrl" + std::to_string(g), sim::kNanosecond);
            conn->plugIn(cp->toCUsPort());
            for (std::size_t c = 0; c < cus_per_cp; c++) {
                auto cu = std::make_unique<ComputeUnit>(
                    &eng,
                    "CU" + std::to_string(g) + "_" + std::to_string(c),
                    sim::Freq::ghz(1), ComputeUnit::Config{});
                conn->plugIn(cu->ctrlPort());
                cp->addCU(cu->ctrlPort());
                cus.push_back(std::move(cu));
            }
            ctrlConns.push_back(std::move(conn));
            cps.push_back(std::move(cp));
        }
    }
};

} // namespace

TEST(DriverTest, PartitionsWorkGroupsEvenlyWithRemainder)
{
    ControlRig rig(3, 1);
    KernelDescriptor k = computeKernel(10); // 10 = 4 + 3 + 3.
    rig.driver.launchKernel(&k);
    rig.eng.run();

    EXPECT_EQ(rig.driver.kernelsCompleted(), 1u);
    std::vector<std::uint64_t> perCp;
    for (const auto &cu : rig.cus)
        perCp.push_back(cu->completedWGs());
    std::sort(perCp.begin(), perCp.end());
    EXPECT_EQ(perCp, (std::vector<std::uint64_t>{3, 3, 4}));
}

TEST(DriverTest, SequentialKernelsRunInOrder)
{
    ControlRig rig(2, 2);
    KernelDescriptor k1 = computeKernel(8);
    KernelDescriptor k2 = computeKernel(4);
    KernelDescriptor k3 = computeKernel(2);
    rig.driver.launchKernel(&k1);
    rig.driver.launchKernel(&k2);
    rig.driver.launchKernel(&k3);
    rig.eng.run();
    EXPECT_EQ(rig.driver.kernelsCompleted(), 3u);
    EXPECT_TRUE(rig.driver.allKernelsDone());

    std::uint64_t total = 0;
    for (const auto &cu : rig.cus)
        total += cu->completedWGs();
    EXPECT_EQ(total, 14u);
}

TEST(DriverTest, AutoStopHaltsEngineOnCompletion)
{
    ControlRig rig(1, 1);
    rig.eng.setConcurrentAccess(true);
    rig.eng.setWaitWhenEmpty(true); // Monitor-attached mode.
    KernelDescriptor k = computeKernel(4);
    rig.driver.launchKernel(&k);
    // With wait-when-empty, only the driver's auto-stop lets run()
    // return; this must not hang.
    rig.eng.run();
    EXPECT_TRUE(rig.driver.allKernelsDone());
}

TEST(DriverTest, AutoStopDisabledKeepsEngineAlive)
{
    ControlRig rig(1, 1);
    rig.driver.setAutoStop(false);
    KernelDescriptor k = computeKernel(2);
    rig.driver.launchKernel(&k);
    // Drain mode (no wait-when-empty): run returns when the queue is
    // naturally empty, with the kernel completed but no stop issued.
    EXPECT_EQ(rig.eng.run(), sim::RunResult::Drained);
    EXPECT_TRUE(rig.driver.allKernelsDone());
}

TEST(DriverTest, LaunchDuringRunExecutesAfterCurrent)
{
    ControlRig rig(1, 2);
    KernelDescriptor k1 = computeKernel(4, 50);
    KernelDescriptor k2 = computeKernel(4, 1);
    rig.driver.launchKernel(&k1);
    // Schedule a mid-run launch from inside the simulation (the only
    // thread-safe way while the engine runs).
    rig.eng.scheduleAt(5 * sim::kNanosecond, "late-launch", [&]() {
        rig.driver.launchKernel(&k2);
    });
    rig.eng.run();
    EXPECT_EQ(rig.driver.kernelsCompleted(), 2u);
}

TEST(DriverTest, FieldsExposeQueueState)
{
    ControlRig rig(1, 1);
    KernelDescriptor k1 = computeKernel(2);
    KernelDescriptor k2 = computeKernel(2);
    rig.driver.launchKernel(&k1);
    rig.driver.launchKernel(&k2);
    EXPECT_EQ(rig.driver.fields()
                  .find("queued_kernels")
                  ->getter()
                  .numeric(),
              2.0);
    rig.eng.run();
    EXPECT_EQ(rig.driver.fields()
                  .find("kernels_completed")
                  ->getter()
                  .intVal(),
              2);
}

TEST(CommandProcessorTest, RoundRobinUsesAllCUs)
{
    ControlRig rig(1, 4);
    KernelDescriptor k = computeKernel(16);
    rig.driver.launchKernel(&k);
    rig.eng.run();
    for (const auto &cu : rig.cus)
        EXPECT_EQ(cu->completedWGs(), 4u) << cu->name();
}

TEST(CommandProcessorTest, MoreWgsThanSlotsStreams)
{
    // 1 CU with 40 wavefront slots = 20 concurrent 2-wavefront WGs;
    // 200 WGs must stream through without loss.
    ControlRig rig(1, 1);
    KernelDescriptor k = computeKernel(200);
    rig.driver.launchKernel(&k);
    rig.eng.run();
    EXPECT_EQ(rig.cus[0]->completedWGs(), 200u);
    EXPECT_EQ(rig.cps[0]->fields()
                  .find("completed_wgs")
                  ->getter()
                  .intVal(),
              200);
}

TEST(CommandProcessorTest, ReportThrottlingStillReachesFinalCounts)
{
    // Even with a large report interval, the tail flush must deliver
    // exact final counts.
    sim::SerialEngine eng;
    Driver driver(&eng, "Driver", sim::Freq::ghz(1));
    CommandProcessor::Config cpCfg;
    cpCfg.reportInterval = 1000000; // Effectively "never" mid-run.
    auto cp = std::make_unique<CommandProcessor>(
        &eng, "CP", sim::Freq::ghz(1), cpCfg);
    sim::DirectConnection dconn(&eng, "DConn", sim::kNanosecond);
    dconn.plugIn(driver.gpuPort());
    dconn.plugIn(cp->toDriverPort());
    driver.addGpu(cp->toDriverPort());

    sim::DirectConnection ctrl(&eng, "Ctrl", sim::kNanosecond);
    ctrl.plugIn(cp->toCUsPort());
    ComputeUnit cu(&eng, "CU", sim::Freq::ghz(1), {});
    ctrl.plugIn(cu.ctrlPort());
    cp->addCU(cu.ctrlPort());

    class Counter : public KernelProgressListener
    {
      public:
        void kernelStarted(std::uint64_t, const std::string &,
                           std::uint64_t) override
        {
        }

        void
        kernelProgress(std::uint64_t, std::uint64_t completed,
                       std::uint64_t) override
        {
            lastCompleted = completed;
        }

        void kernelFinished(std::uint64_t) override { finished = true; }

        std::uint64_t lastCompleted = 0;
        bool finished = false;
    } listener;
    driver.setProgressListener(&listener);

    KernelDescriptor k = computeKernel(12);
    driver.launchKernel(&k);
    eng.run();
    EXPECT_TRUE(listener.finished);
    EXPECT_EQ(listener.lastCompleted, 12u);
}
