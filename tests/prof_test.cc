/**
 * @file
 * Tests for the instrumentation profiler (the pprof substitute that
 * feeds the arc-diagram view).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sim/prof.hh"

using akita::sim::ProfScope;
using akita::sim::Profiler;
using akita::sim::ProfSnapshot;

namespace
{

void
spin(int us)
{
    auto end = std::chrono::steady_clock::now() +
               std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < end) {
    }
}

const akita::sim::ProfEntry *
findEntry(const ProfSnapshot &s, const std::string &name)
{
    for (const auto &e : s.entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

} // namespace

class ProfilerTest : public ::testing::Test
{
  protected:
    void SetUp() override { Profiler::instance().setEnabled(true); }

    void TearDown() override { Profiler::instance().setEnabled(false); }
};

TEST_F(ProfilerTest, DisabledCollectsNothing)
{
    Profiler::instance().setEnabled(false);
    {
        ProfScope s("ghost");
        spin(100);
    }
    Profiler::instance().setEnabled(true); // Resets data.
    ProfSnapshot snap = Profiler::instance().snapshot();
    EXPECT_EQ(findEntry(snap, "ghost"), nullptr);
}

TEST_F(ProfilerTest, RecordsCallsAndTime)
{
    for (int i = 0; i < 3; i++) {
        ProfScope s("work");
        spin(200);
    }
    ProfSnapshot snap = Profiler::instance().snapshot();
    const auto *e = findEntry(snap, "work");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->calls, 3u);
    EXPECT_GE(e->totalNs, 3u * 200u * 1000u / 2); // Allow slack.
    EXPECT_EQ(e->selfNs, e->totalNs); // No children.
}

TEST_F(ProfilerTest, SelfTimeExcludesChildren)
{
    {
        ProfScope outer("outer");
        spin(300);
        {
            ProfScope inner("inner");
            spin(600);
        }
    }
    ProfSnapshot snap = Profiler::instance().snapshot();
    const auto *outer = findEntry(snap, "outer");
    const auto *inner = findEntry(snap, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_GT(outer->totalNs, inner->totalNs);
    EXPECT_LT(outer->selfNs, outer->totalNs);
    // The inner scope ran longer than the outer's own work.
    EXPECT_GT(inner->selfNs, outer->selfNs);
}

TEST_F(ProfilerTest, EdgesCarryCallerCalleeWeights)
{
    for (int i = 0; i < 4; i++) {
        ProfScope a("caller");
        ProfScope b("callee");
        spin(100);
    }
    ProfSnapshot snap = Profiler::instance().snapshot();
    bool found = false;
    for (const auto &e : snap.edges) {
        if (e.caller == "caller" && e.callee == "callee") {
            found = true;
            EXPECT_EQ(e.calls, 4u);
            EXPECT_GT(e.totalNs, 0u);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(ProfilerTest, TopNLimitsEntriesSortedBySelfTime)
{
    for (int i = 0; i < 40; i++) {
        ProfScope s("fn" + std::to_string(i));
        spin(10 + i * 5); // Later functions are slower.
    }
    ProfSnapshot snap = Profiler::instance().snapshot(10);
    ASSERT_EQ(snap.entries.size(), 10u);
    for (std::size_t i = 1; i < snap.entries.size(); i++)
        EXPECT_GE(snap.entries[i - 1].selfNs, snap.entries[i].selfNs);
    // The slowest function must be present.
    EXPECT_NE(findEntry(snap, "fn39"), nullptr);
}

TEST_F(ProfilerTest, ResetClearsData)
{
    {
        ProfScope s("tmp");
        spin(50);
    }
    Profiler::instance().reset();
    ProfSnapshot snap = Profiler::instance().snapshot();
    EXPECT_TRUE(snap.entries.empty());
}

TEST_F(ProfilerTest, WallTimeAdvances)
{
    spin(1000);
    ProfSnapshot snap = Profiler::instance().snapshot();
    EXPECT_GE(snap.wallNs, 500u * 1000u);
}

TEST_F(ProfilerTest, MergesPerThreadTables)
{
    // Parallel-engine workers profile concurrently into thread-local
    // tables; a snapshot must merge every thread's calls for the same
    // name into one entry.
    constexpr int kThreads = 4;
    constexpr int kCallsPerThread = 25;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([t]() {
            for (int i = 0; i < kCallsPerThread; i++) {
                ProfScope shared("shared_work");
                ProfScope own("thread_fn" + std::to_string(t));
                spin(20);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    ProfSnapshot snap = Profiler::instance().snapshot(100);
    const auto *shared = findEntry(snap, "shared_work");
    ASSERT_NE(shared, nullptr);
    EXPECT_EQ(shared->calls,
              static_cast<std::uint64_t>(kThreads * kCallsPerThread));
    for (int t = 0; t < kThreads; t++) {
        const auto *own =
            findEntry(snap, "thread_fn" + std::to_string(t));
        ASSERT_NE(own, nullptr) << "thread " << t;
        EXPECT_EQ(own->calls,
                  static_cast<std::uint64_t>(kCallsPerThread));
    }
    // Nesting stayed thread-local: every shared->own edge is intact.
    std::uint64_t edgeCalls = 0;
    for (const auto &e : snap.edges) {
        if (e.caller == "shared_work")
            edgeCalls += e.calls;
    }
    EXPECT_EQ(edgeCalls,
              static_cast<std::uint64_t>(kThreads * kCallsPerThread));
}

TEST_F(ProfilerTest, ConcurrentSnapshotsDoNotCorruptCollection)
{
    std::atomic<bool> stop{false};
    std::thread snapper([&]() {
        while (!stop.load())
            Profiler::instance().snapshot(10);
    });
    for (int i = 0; i < 200; i++) {
        ProfScope s("hot");
        spin(5);
    }
    stop.store(true);
    snapper.join();
    ProfSnapshot snap = Profiler::instance().snapshot();
    const auto *e = findEntry(snap, "hot");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->calls, 200u);
}

TEST_F(ProfilerTest, RecursiveScopesDoNotUnderflow)
{
    std::function<void(int)> rec = [&](int depth) {
        ProfScope s("recursive");
        if (depth > 0)
            rec(depth - 1);
    };
    rec(20);
    ProfSnapshot snap = Profiler::instance().snapshot();
    const auto *e = findEntry(snap, "recursive");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->calls, 21u);
    EXPECT_GE(e->totalNs, e->selfNs);
}
