/**
 * @file
 * Unit suite for the SPSC mailbox ring behind the domain engine's
 * cross-domain fast path: capacity/wrap-around arithmetic, the
 * full-ring overflow contract the slow-path fallback depends on, and
 * release/acquire publication under a real producer/consumer pair
 * (run with --gtest_repeat under TSan by the CI race leg).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/spsc.hh"

using akita::sim::SpscRing;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
    EXPECT_EQ(SpscRing<int>(300).capacity(), 512u);
    // Degenerate request still yields a usable one-slot ring.
    EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
}

TEST(SpscRing, FifoAcrossManyWrapArounds)
{
    // A small ring cycled far past its capacity: the monotone indices
    // must keep masking to the right slots long after they exceed the
    // ring size.
    SpscRing<int> ring(4);
    int next = 0;
    int expect = 0;
    for (int round = 0; round < 1000; round++) {
        for (int i = 0; i < 3; i++) {
            int v = next++;
            ASSERT_TRUE(ring.tryPush(v));
        }
        int out = -1;
        while (ring.tryPop(out))
            ASSERT_EQ(out, expect++);
    }
    EXPECT_EQ(expect, next);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsAndLeavesValueIntact)
{
    // The overflow contract the engine's slow-path spill depends on:
    // a failed push must not consume the value (it goes to the locked
    // mailbox instead) and must not clobber any queued element.
    SpscRing<std::unique_ptr<int>> ring(2);
    auto a = std::make_unique<int>(1);
    auto b = std::make_unique<int>(2);
    auto c = std::make_unique<int>(3);
    ASSERT_TRUE(ring.tryPush(a));
    ASSERT_TRUE(ring.tryPush(b));
    EXPECT_EQ(ring.size(), 2u);

    ASSERT_FALSE(ring.tryPush(c));
    ASSERT_NE(c, nullptr) << "rejected push must leave the value";
    EXPECT_EQ(*c, 3);

    // Drain one, and the rejected value fits again.
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(*out, 1);
    ASSERT_TRUE(ring.tryPush(c));
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(*out, 2);
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(*out, 3);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, DrainTakesWholeSegmentInOrder)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 5; i++) {
        int v = i;
        ASSERT_TRUE(ring.tryPush(v));
    }
    std::vector<int> got;
    EXPECT_EQ(ring.drain([&](int v) { got.push_back(v); }), 5u);
    ASSERT_EQ(got.size(), 5u);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(ring.drain([&](int) { FAIL(); }), 0u);
}

TEST(SpscRing, DrainExceptionKeepsConsumedElementsConsumed)
{
    // If the consumer callback throws, everything already handed out
    // stays consumed — the next drain must not replay element 0.
    SpscRing<int> ring(8);
    for (int i = 0; i < 4; i++) {
        int v = i;
        ASSERT_TRUE(ring.tryPush(v));
    }
    int seen = 0;
    EXPECT_THROW(ring.drain([&](int v) {
        seen++;
        if (v == 1)
            throw std::runtime_error("boom");
    }),
                 std::runtime_error);
    EXPECT_EQ(seen, 2);
    std::vector<int> rest;
    ring.drain([&](int v) { rest.push_back(v); });
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0], 2);
    EXPECT_EQ(rest[1], 3);
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesFifo)
{
    // Release/acquire publication under a real thread pair: the
    // consumer must only ever observe fully written values, in order,
    // with none lost and none duplicated. TSan (CI runs this suite
    // with --gtest_repeat=3) verifies the ordering annotations; the
    // sequence check verifies the arithmetic.
    // Sized for the 1-core CI runner: the pair makes progress through
    // scheduler round-robin, so a full-ring (or empty-ring) spin must
    // yield rather than burn its whole quantum.
    constexpr std::uint64_t kCount = 20000;
    SpscRing<std::uint64_t> ring(64);
    std::atomic<bool> fail{false};
    std::thread consumer([&]() {
        std::uint64_t expect = 0;
        while (expect < kCount) {
            if (ring.drain([&](std::uint64_t v) {
                    if (v != expect++)
                        fail.store(true);
                }) == 0)
                std::this_thread::yield();
        }
    });
    for (std::uint64_t i = 0; i < kCount;) {
        std::uint64_t v = i;
        if (ring.tryPush(v))
            i++;
        else
            std::this_thread::yield();
    }
    consumer.join();
    EXPECT_FALSE(fail.load());
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ConcurrentMoveOnlyPayloads)
{
    // The engine ships std::unique_ptr<Event>; exercise the move-only
    // path under concurrency so a dropped or double-freed slot shows
    // up (ASan/TSan legs) as more than a wrong number.
    constexpr int kCount = 10000;
    SpscRing<std::unique_ptr<int>> ring(32);
    std::atomic<std::int64_t> sum{0};
    std::thread consumer([&]() {
        int got = 0;
        while (got < kCount) {
            std::unique_ptr<int> p;
            if (ring.tryPop(p)) {
                sum.fetch_add(*p, std::memory_order_relaxed);
                got++;
            } else {
                std::this_thread::yield();
            }
        }
    });
    std::int64_t want = 0;
    for (int i = 0; i < kCount;) {
        auto p = std::make_unique<int>(i);
        if (ring.tryPush(p)) {
            want += i;
            i++;
        } else {
            ASSERT_NE(p, nullptr);
            std::this_thread::yield();
        }
    }
    consumer.join();
    EXPECT_EQ(sum.load(), want);
}
