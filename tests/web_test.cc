/**
 * @file
 * Tests for the HTTP substrate: wire parsing, URL decoding, routing,
 * and live server/client round trips.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "web/client.hh"
#include "web/http.hh"
#include "web/server.hh"

using namespace akita::web;

TEST(HttpParse, SimpleGet)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET /api/time HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/api/time");
    EXPECT_EQ(req.headers.at("host"), "x");
    EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParse, QueryParameters)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw =
        "GET /api/component?name=GPU%5B0%5D.CP&sort=size&flag "
        "HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/api/component");
    EXPECT_EQ(req.queryParam("name"), "GPU[0].CP");
    EXPECT_EQ(req.queryParam("sort"), "size");
    EXPECT_EQ(req.queryParam("flag"), "");
    EXPECT_EQ(req.queryParam("missing", "dflt"), "dflt");
    EXPECT_EQ(req.queryInt("missing", 7), 7);
}

TEST(HttpParse, QueryIntParsing)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET /x?a=42&b=abc HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.queryInt("a", 0), 42);
    EXPECT_EQ(req.queryInt("b", -1), -1) << "non-numeric uses default";
}

TEST(HttpParse, PostWithBody)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "POST /api/x HTTP/1.1\r\nContent-Length: 5\r\n"
                      "Content-Type: application/json\r\n\r\nhello";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.body, "hello");
}

TEST(HttpParse, IncompleteNeedsMoreBytes)
{
    Request req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseRequest("GET /x HTTP/1.1\r\nHost:", req, consumed),
              ParseResult::Incomplete);
    EXPECT_EQ(parseRequest("GET /x HTTP/1.1\r\nContent-Length: 10"
                           "\r\n\r\nabc",
                           req, consumed),
              ParseResult::Incomplete);
    EXPECT_EQ(parseRequest("GE", req, consumed),
              ParseResult::Incomplete);
}

TEST(HttpParse, PipelinedRequestsConsumeExactly)
{
    Request req;
    std::size_t consumed = 0;
    std::string two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/a");
    two.erase(0, consumed);
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/b");
}

struct BadReq
{
    const char *raw;
    const char *why;
};

class HttpMalformed : public ::testing::TestWithParam<BadReq>
{
};

TEST_P(HttpMalformed, Rejected)
{
    Request req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseRequest(GetParam().raw, req, consumed),
              ParseResult::Invalid)
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HttpMalformed,
    ::testing::Values(
        BadReq{"BROKEN\r\n\r\n", "no method/target split"},
        BadReq{"GET  HTTP/1.1\r\n\r\n", "empty target"},
        BadReq{"GET x HTTP/1.1\r\n\r\n", "target missing leading /"},
        BadReq{"GET / SMTP/1.0\r\n\r\n", "not HTTP"},
        BadReq{"GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n",
               "header without colon"},
        BadReq{"GET / HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
               "negative content length"},
        BadReq{"GET / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
               "absurd content length"}));

TEST(UrlDecode, Basics)
{
    EXPECT_EQ(urlDecode("a%20b"), "a b");
    EXPECT_EQ(urlDecode("%5B0%5D"), "[0]");
    EXPECT_EQ(urlDecode("plain"), "plain");
    EXPECT_EQ(urlDecode("bad%zz"), "bad%zz") << "invalid hex passes through";
    EXPECT_EQ(urlDecode("%41%42"), "AB");
}

TEST(HttpResponse, Serialization)
{
    Response r = Response::json("{\"a\":1}");
    std::string wire = r.serialize(true);
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);

    Response e = Response::error(404, "nope");
    std::string ew = e.serialize(false);
    EXPECT_NE(ew.find("404 Not Found"), std::string::npos);
    EXPECT_NE(ew.find("Connection: close"), std::string::npos);
}

TEST(HttpResponse, ClientCanParseServerOutput)
{
    Response r = Response::ok("payload");
    auto parsed = parseResponse(r.serialize(false));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->status, 200);
    EXPECT_EQ(parsed->body, "payload");
}

// ---------------------------------------------------------------------
// Live server tests
// ---------------------------------------------------------------------

class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server.route("GET", "/hello", [](const Request &) {
            return Response::ok("world");
        });
        server.route("GET", "/echo", [](const Request &req) {
            return Response::ok(req.queryParam("msg"));
        });
        server.route("POST", "/body", [](const Request &req) {
            return Response::ok(req.body);
        });
        server.route("GET", "/api/tree/*", [](const Request &req) {
            return Response::ok("prefix:" + req.path);
        });
        server.route("GET", "/boom", [](const Request &) -> Response {
            throw std::runtime_error("kaboom");
        });
        ASSERT_TRUE(server.start(0));
    }

    HttpServer server;
};

TEST_F(ServerTest, RoundTrip)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/hello");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "world");
}

TEST_F(ServerTest, QueryReachesHandler)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/echo?msg=hi%20there");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "hi there");
}

TEST_F(ServerTest, PostBody)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.post("/body", "{\"x\":1}");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "{\"x\":1}");
}

TEST_F(ServerTest, NotFound)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/nope");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 404);
}

TEST_F(ServerTest, MethodMatters)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.post("/hello", "");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 404);
}

TEST_F(ServerTest, PrefixRoutes)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/api/tree/a/b/c");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "prefix:/api/tree/a/b/c");
}

TEST_F(ServerTest, HandlerExceptionBecomes500)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/boom");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 500);
    EXPECT_NE(r->body.find("kaboom"), std::string::npos);
}

TEST_F(ServerTest, ConcurrentClients)
{
    constexpr int kThreads = 8;
    constexpr int kReqs = 20;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&]() {
            HttpClient client("127.0.0.1", server.port());
            for (int i = 0; i < kReqs; i++) {
                auto r = client.get("/hello");
                if (r && r->status == 200 && r->body == "world")
                    ok++;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kThreads * kReqs);
    EXPECT_GE(server.requestCount(), static_cast<std::uint64_t>(
                                         kThreads * kReqs));
}

TEST_F(ServerTest, StopIsIdempotent)
{
    server.stop();
    server.stop();
    EXPECT_FALSE(server.running());
    HttpClient client("127.0.0.1", server.port());
    EXPECT_FALSE(client.get("/hello").has_value());
}

TEST(ServerLifecycle, EphemeralPortAssigned)
{
    HttpServer s;
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));
    EXPECT_GT(s.port(), 0);
    EXPECT_EQ(s.url(), "http://127.0.0.1:" + std::to_string(s.port()));
    s.stop();
}

TEST(ServerLifecycle, TwoServersCoexist)
{
    HttpServer a, b;
    a.route("GET", "/", [](const Request &) {
        return Response::ok("a");
    });
    b.route("GET", "/", [](const Request &) {
        return Response::ok("b");
    });
    ASSERT_TRUE(a.start(0));
    ASSERT_TRUE(b.start(0));
    EXPECT_NE(a.port(), b.port());
    HttpClient ca("127.0.0.1", a.port()), cb("127.0.0.1", b.port());
    EXPECT_EQ(ca.get("/")->body, "a");
    EXPECT_EQ(cb.get("/")->body, "b");
}

// ---------------------------------------------------------------------
// Reactor-specific behavior: keep-alive, pipelining, connection cap
// ---------------------------------------------------------------------

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace
{

/** Blocking test socket speaking raw bytes to a server. */
class RawSocket
{
  public:
    explicit RawSocket(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        timeval tv{};
        tv.tv_sec = 10;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~RawSocket()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    bool
    send(const std::string &bytes)
    {
        return fd_ >= 0 &&
               ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
                   static_cast<ssize_t>(bytes.size());
    }

    /** Reads until @p n complete Content-Length responses arrive. */
    std::vector<ParsedResponse>
    readResponses(std::size_t n)
    {
        std::vector<ParsedResponse> out;
        std::string data;
        char buf[4096];
        while (out.size() < n) {
            std::size_t consumed = 0;
            if (auto r = parseResponse(data, consumed)) {
                data.erase(0, consumed);
                out.push_back(std::move(*r));
                continue;
            }
            ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
            if (got <= 0)
                break;
            data.append(buf, static_cast<std::size_t>(got));
        }
        return out;
    }

  private:
    int fd_ = -1;
};

} // namespace

TEST_F(ServerTest, KeepAliveServesTwoRequestsOnOneSocket)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("GET /hello HTTP/1.1\r\nHost: t\r\n\r\n"));
    auto first = sock.readResponses(1);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].body, "world");
    // Same socket, second request: the connection stayed open.
    ASSERT_TRUE(sock.send(
        "GET /echo?msg=again HTTP/1.1\r\nHost: t\r\n\r\n"));
    auto second = sock.readResponses(1);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].body, "again");
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    // Both requests in one write; responses must come back in order.
    ASSERT_TRUE(sock.send("GET /echo?msg=one HTTP/1.1\r\nHost: t\r\n\r\n"
                          "GET /echo?msg=two HTTP/1.1\r\nHost: t\r\n"
                          "Connection: close\r\n\r\n"));
    auto resp = sock.readResponses(2);
    ASSERT_EQ(resp.size(), 2u);
    EXPECT_EQ(resp[0].body, "one");
    EXPECT_EQ(resp[1].body, "two");
}

TEST_F(ServerTest, ConnectionCloseIsHonored)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("GET /hello HTTP/1.1\r\nHost: t\r\n"
                          "Connection: close\r\n\r\n"));
    auto resp = sock.readResponses(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].headers.at("connection"), "close");
    // A follow-up on the same socket gets no response (server closed).
    sock.send("GET /hello HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_TRUE(sock.readResponses(1).empty());
}

TEST_F(ServerTest, PersistentClientReusesConnection)
{
    PersistentClient client("127.0.0.1", server.port());
    for (int i = 0; i < 5; i++) {
        auto r = client.get("/hello");
        ASSERT_TRUE(r.has_value()) << "request " << i;
        EXPECT_EQ(r->status, 200);
        EXPECT_EQ(r->body, "world");
    }
    EXPECT_TRUE(client.connected());
}

TEST_F(ServerTest, MalformedRequestGets400)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("BROKEN\r\n\r\n"));
    auto resp = sock.readResponses(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].status, 400);
}

TEST(ServerOptionsTest, ConnectionCapRejectsWith503)
{
    ServerOptions opts;
    opts.maxConnections = 2;
    HttpServer s(opts);
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));

    // Two keep-alive connections occupy the cap...
    RawSocket a(s.port()), b(s.port());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(a.send("GET / HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_TRUE(b.send("GET / HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_EQ(a.readResponses(1).size(), 1u);
    ASSERT_EQ(b.readResponses(1).size(), 1u);

    // ...so the third connect is rejected with a fast 503.
    RawSocket c(s.port());
    ASSERT_TRUE(c.ok());
    auto resp = c.readResponses(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].status, 503);
    s.stop();
}

TEST(ServerOptionsTest, WorkerCountResolvedAfterStart)
{
    ServerOptions opts;
    opts.workers = 3;
    HttpServer s(opts);
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));
    EXPECT_EQ(s.options().workers, 3);
    HttpClient client("127.0.0.1", s.port());
    EXPECT_EQ(client.get("/")->body, "ok");
    s.stop();
}

TEST(ServerOptionsTest, IdleConnectionsAreReaped)
{
    ServerOptions opts;
    opts.idleTimeoutMs = 100;
    HttpServer s(opts);
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));
    RawSocket sock(s.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("GET / HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_EQ(sock.readResponses(1).size(), 1u);
    // Idle past the timeout: the server closes the connection, so the
    // next read returns EOF (no response bytes).
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    EXPECT_TRUE(sock.readResponses(1).empty());
    s.stop();
}
