/**
 * @file
 * Tests for the HTTP substrate: wire parsing, URL decoding, routing,
 * and live server/client round trips.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "web/client.hh"
#include "web/http.hh"
#include "web/server.hh"

using namespace akita::web;

TEST(HttpParse, SimpleGet)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET /api/time HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/api/time");
    EXPECT_EQ(req.headers.at("host"), "x");
    EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParse, QueryParameters)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw =
        "GET /api/component?name=GPU%5B0%5D.CP&sort=size&flag "
        "HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/api/component");
    EXPECT_EQ(req.queryParam("name"), "GPU[0].CP");
    EXPECT_EQ(req.queryParam("sort"), "size");
    EXPECT_EQ(req.queryParam("flag"), "");
    EXPECT_EQ(req.queryParam("missing", "dflt"), "dflt");
    EXPECT_EQ(req.queryInt("missing", 7), 7);
}

TEST(HttpParse, QueryIntParsing)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET /x?a=42&b=abc HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.queryInt("a", 0), 42);
    EXPECT_EQ(req.queryInt("b", -1), -1) << "non-numeric uses default";
}

TEST(HttpParse, PostWithBody)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "POST /api/x HTTP/1.1\r\nContent-Length: 5\r\n"
                      "Content-Type: application/json\r\n\r\nhello";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.body, "hello");
}

TEST(HttpParse, IncompleteNeedsMoreBytes)
{
    Request req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseRequest("GET /x HTTP/1.1\r\nHost:", req, consumed),
              ParseResult::Incomplete);
    EXPECT_EQ(parseRequest("GET /x HTTP/1.1\r\nContent-Length: 10"
                           "\r\n\r\nabc",
                           req, consumed),
              ParseResult::Incomplete);
    EXPECT_EQ(parseRequest("GE", req, consumed),
              ParseResult::Incomplete);
}

TEST(HttpParse, PipelinedRequestsConsumeExactly)
{
    Request req;
    std::size_t consumed = 0;
    std::string two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/a");
    two.erase(0, consumed);
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/b");
}

struct BadReq
{
    const char *raw;
    const char *why;
};

class HttpMalformed : public ::testing::TestWithParam<BadReq>
{
};

TEST_P(HttpMalformed, Rejected)
{
    Request req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseRequest(GetParam().raw, req, consumed),
              ParseResult::Invalid)
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HttpMalformed,
    ::testing::Values(
        BadReq{"BROKEN\r\n\r\n", "no method/target split"},
        BadReq{"GET  HTTP/1.1\r\n\r\n", "empty target"},
        BadReq{"GET x HTTP/1.1\r\n\r\n", "target missing leading /"},
        BadReq{"GET / SMTP/1.0\r\n\r\n", "not HTTP"},
        BadReq{"GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n",
               "header without colon"},
        BadReq{"GET / HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
               "negative content length"},
        BadReq{"GET / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
               "absurd content length"}));

TEST(UrlDecode, Basics)
{
    EXPECT_EQ(urlDecode("a%20b"), "a b");
    EXPECT_EQ(urlDecode("%5B0%5D"), "[0]");
    EXPECT_EQ(urlDecode("plain"), "plain");
    EXPECT_EQ(urlDecode("bad%zz"), "bad%zz") << "invalid hex passes through";
    EXPECT_EQ(urlDecode("%41%42"), "AB");
}

TEST(HttpResponse, Serialization)
{
    Response r = Response::json("{\"a\":1}");
    std::string wire = r.serialize(true);
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);

    Response e = Response::error(404, "nope");
    std::string ew = e.serialize(false);
    EXPECT_NE(ew.find("404 Not Found"), std::string::npos);
    EXPECT_NE(ew.find("Connection: close"), std::string::npos);
}

TEST(HttpResponse, ClientCanParseServerOutput)
{
    Response r = Response::ok("payload");
    auto parsed = parseResponse(r.serialize(false));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->status, 200);
    EXPECT_EQ(parsed->body, "payload");
}

// ---------------------------------------------------------------------
// Live server tests
// ---------------------------------------------------------------------

class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server.route("GET", "/hello", [](const Request &) {
            return Response::ok("world");
        });
        server.route("GET", "/echo", [](const Request &req) {
            return Response::ok(req.queryParam("msg"));
        });
        server.route("POST", "/body", [](const Request &req) {
            return Response::ok(req.body);
        });
        server.route("GET", "/api/tree/*", [](const Request &req) {
            return Response::ok("prefix:" + req.path);
        });
        server.route("GET", "/boom", [](const Request &) -> Response {
            throw std::runtime_error("kaboom");
        });
        ASSERT_TRUE(server.start(0));
    }

    HttpServer server;
};

TEST_F(ServerTest, RoundTrip)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/hello");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "world");
}

TEST_F(ServerTest, QueryReachesHandler)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/echo?msg=hi%20there");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "hi there");
}

TEST_F(ServerTest, PostBody)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.post("/body", "{\"x\":1}");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "{\"x\":1}");
}

TEST_F(ServerTest, NotFound)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/nope");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 404);
}

TEST_F(ServerTest, MethodMatters)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.post("/hello", "");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 404);
}

TEST_F(ServerTest, PrefixRoutes)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/api/tree/a/b/c");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "prefix:/api/tree/a/b/c");
}

TEST_F(ServerTest, HandlerExceptionBecomes500)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/boom");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 500);
    EXPECT_NE(r->body.find("kaboom"), std::string::npos);
}

TEST_F(ServerTest, ConcurrentClients)
{
    constexpr int kThreads = 8;
    constexpr int kReqs = 20;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&]() {
            HttpClient client("127.0.0.1", server.port());
            for (int i = 0; i < kReqs; i++) {
                auto r = client.get("/hello");
                if (r && r->status == 200 && r->body == "world")
                    ok++;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kThreads * kReqs);
    EXPECT_GE(server.requestCount(), static_cast<std::uint64_t>(
                                         kThreads * kReqs));
}

TEST_F(ServerTest, StopIsIdempotent)
{
    server.stop();
    server.stop();
    EXPECT_FALSE(server.running());
    HttpClient client("127.0.0.1", server.port());
    EXPECT_FALSE(client.get("/hello").has_value());
}

TEST(ServerLifecycle, EphemeralPortAssigned)
{
    HttpServer s;
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));
    EXPECT_GT(s.port(), 0);
    EXPECT_EQ(s.url(), "http://127.0.0.1:" + std::to_string(s.port()));
    s.stop();
}

TEST(ServerLifecycle, TwoServersCoexist)
{
    HttpServer a, b;
    a.route("GET", "/", [](const Request &) {
        return Response::ok("a");
    });
    b.route("GET", "/", [](const Request &) {
        return Response::ok("b");
    });
    ASSERT_TRUE(a.start(0));
    ASSERT_TRUE(b.start(0));
    EXPECT_NE(a.port(), b.port());
    HttpClient ca("127.0.0.1", a.port()), cb("127.0.0.1", b.port());
    EXPECT_EQ(ca.get("/")->body, "a");
    EXPECT_EQ(cb.get("/")->body, "b");
}
