/**
 * @file
 * Tests for the HTTP substrate: wire parsing, URL decoding, routing,
 * and live server/client round trips.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "web/client.hh"
#include "web/http.hh"
#include "web/server.hh"

using namespace akita::web;

TEST(HttpParse, SimpleGet)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET /api/time HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/api/time");
    EXPECT_EQ(req.headers.at("host"), "x");
    EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParse, QueryParameters)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw =
        "GET /api/component?name=GPU%5B0%5D.CP&sort=size&flag "
        "HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/api/component");
    EXPECT_EQ(req.queryParam("name"), "GPU[0].CP");
    EXPECT_EQ(req.queryParam("sort"), "size");
    EXPECT_EQ(req.queryParam("flag"), "");
    EXPECT_EQ(req.queryParam("missing", "dflt"), "dflt");
    EXPECT_EQ(req.queryInt("missing", 7), 7);
}

TEST(HttpParse, QueryIntParsing)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET /x?a=42&b=abc HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.queryInt("a", 0), 42);
    EXPECT_EQ(req.queryInt("b", -1), -1) << "non-numeric uses default";
}

TEST(HttpParse, PostWithBody)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "POST /api/x HTTP/1.1\r\nContent-Length: 5\r\n"
                      "Content-Type: application/json\r\n\r\nhello";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.body, "hello");
}

TEST(HttpParse, IncompleteNeedsMoreBytes)
{
    Request req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseRequest("GET /x HTTP/1.1\r\nHost:", req, consumed),
              ParseResult::Incomplete);
    EXPECT_EQ(parseRequest("GET /x HTTP/1.1\r\nContent-Length: 10"
                           "\r\n\r\nabc",
                           req, consumed),
              ParseResult::Incomplete);
    EXPECT_EQ(parseRequest("GE", req, consumed),
              ParseResult::Incomplete);
}

TEST(HttpParse, PipelinedRequestsConsumeExactly)
{
    Request req;
    std::size_t consumed = 0;
    std::string two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/a");
    two.erase(0, consumed);
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/b");
}

struct BadReq
{
    const char *raw;
    const char *why;
};

class HttpMalformed : public ::testing::TestWithParam<BadReq>
{
};

TEST_P(HttpMalformed, Rejected)
{
    Request req;
    std::size_t consumed = 0;
    EXPECT_EQ(parseRequest(GetParam().raw, req, consumed),
              ParseResult::Invalid)
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HttpMalformed,
    ::testing::Values(
        BadReq{"BROKEN\r\n\r\n", "no method/target split"},
        BadReq{"GET  HTTP/1.1\r\n\r\n", "empty target"},
        BadReq{"GET x HTTP/1.1\r\n\r\n", "target missing leading /"},
        BadReq{"GET / SMTP/1.0\r\n\r\n", "not HTTP"},
        BadReq{"GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n",
               "header without colon"},
        BadReq{"GET / HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
               "negative content length"},
        BadReq{"GET / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
               "absurd content length"}));

TEST(UrlDecode, Basics)
{
    EXPECT_EQ(urlDecode("a%20b"), "a b");
    EXPECT_EQ(urlDecode("%5B0%5D"), "[0]");
    EXPECT_EQ(urlDecode("plain"), "plain");
    EXPECT_EQ(urlDecode("bad%zz"), "bad%zz") << "invalid hex passes through";
    EXPECT_EQ(urlDecode("%41%42"), "AB");
}

TEST(HttpResponse, Serialization)
{
    Response r = Response::json("{\"a\":1}");
    std::string wire = r.serialize(true);
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);

    Response e = Response::error(404, "nope");
    std::string ew = e.serialize(false);
    EXPECT_NE(ew.find("404 Not Found"), std::string::npos);
    EXPECT_NE(ew.find("Connection: close"), std::string::npos);
}

TEST(HttpResponse, ClientCanParseServerOutput)
{
    Response r = Response::ok("payload");
    auto parsed = parseResponse(r.serialize(false));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->status, 200);
    EXPECT_EQ(parsed->body, "payload");
}

// ---------------------------------------------------------------------
// Live server tests
// ---------------------------------------------------------------------

class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server.route("GET", "/hello", [](const Request &) {
            return Response::ok("world");
        });
        server.route("GET", "/echo", [](const Request &req) {
            return Response::ok(req.queryParam("msg"));
        });
        server.route("POST", "/body", [](const Request &req) {
            return Response::ok(req.body);
        });
        server.route("GET", "/api/tree/*", [](const Request &req) {
            return Response::ok("prefix:" + req.path);
        });
        server.route("GET", "/boom", [](const Request &) -> Response {
            throw std::runtime_error("kaboom");
        });
        ASSERT_TRUE(server.start(0));
    }

    HttpServer server;
};

TEST_F(ServerTest, RoundTrip)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/hello");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "world");
}

TEST_F(ServerTest, QueryReachesHandler)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/echo?msg=hi%20there");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "hi there");
}

TEST_F(ServerTest, PostBody)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.post("/body", "{\"x\":1}");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "{\"x\":1}");
}

TEST_F(ServerTest, NotFound)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/nope");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 404);
}

TEST_F(ServerTest, MethodMatters)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.post("/hello", "");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 404);
}

TEST_F(ServerTest, PrefixRoutes)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/api/tree/a/b/c");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "prefix:/api/tree/a/b/c");
}

TEST_F(ServerTest, HandlerExceptionBecomes500)
{
    HttpClient client("127.0.0.1", server.port());
    auto r = client.get("/boom");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 500);
    EXPECT_NE(r->body.find("kaboom"), std::string::npos);
}

TEST_F(ServerTest, ConcurrentClients)
{
    constexpr int kThreads = 8;
    constexpr int kReqs = 20;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&]() {
            HttpClient client("127.0.0.1", server.port());
            for (int i = 0; i < kReqs; i++) {
                auto r = client.get("/hello");
                if (r && r->status == 200 && r->body == "world")
                    ok++;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kThreads * kReqs);
    EXPECT_GE(server.requestCount(), static_cast<std::uint64_t>(
                                         kThreads * kReqs));
}

TEST_F(ServerTest, StopIsIdempotent)
{
    server.stop();
    server.stop();
    EXPECT_FALSE(server.running());
    HttpClient client("127.0.0.1", server.port());
    EXPECT_FALSE(client.get("/hello").has_value());
}

TEST(ServerLifecycle, EphemeralPortAssigned)
{
    HttpServer s;
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));
    EXPECT_GT(s.port(), 0);
    EXPECT_EQ(s.url(), "http://127.0.0.1:" + std::to_string(s.port()));
    s.stop();
}

TEST(ServerLifecycle, TwoServersCoexist)
{
    HttpServer a, b;
    a.route("GET", "/", [](const Request &) {
        return Response::ok("a");
    });
    b.route("GET", "/", [](const Request &) {
        return Response::ok("b");
    });
    ASSERT_TRUE(a.start(0));
    ASSERT_TRUE(b.start(0));
    EXPECT_NE(a.port(), b.port());
    HttpClient ca("127.0.0.1", a.port()), cb("127.0.0.1", b.port());
    EXPECT_EQ(ca.get("/")->body, "a");
    EXPECT_EQ(cb.get("/")->body, "b");
}

// ---------------------------------------------------------------------
// Reactor-specific behavior: keep-alive, pipelining, connection cap
// ---------------------------------------------------------------------

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace
{

/** Blocking test socket speaking raw bytes to a server. */
class RawSocket
{
  public:
    explicit RawSocket(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        timeval tv{};
        tv.tv_sec = 10;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~RawSocket()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    bool
    send(const std::string &bytes)
    {
        return fd_ >= 0 &&
               ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
                   static_cast<ssize_t>(bytes.size());
    }

    /** Reads until @p n complete Content-Length responses arrive. */
    std::vector<ParsedResponse>
    readResponses(std::size_t n)
    {
        std::vector<ParsedResponse> out;
        std::string data;
        char buf[4096];
        while (out.size() < n) {
            std::size_t consumed = 0;
            if (auto r = parseResponse(data, consumed)) {
                data.erase(0, consumed);
                out.push_back(std::move(*r));
                continue;
            }
            ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
            if (got <= 0)
                break;
            data.append(buf, static_cast<std::size_t>(got));
        }
        return out;
    }

  private:
    int fd_ = -1;
};

} // namespace

TEST_F(ServerTest, KeepAliveServesTwoRequestsOnOneSocket)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("GET /hello HTTP/1.1\r\nHost: t\r\n\r\n"));
    auto first = sock.readResponses(1);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].body, "world");
    // Same socket, second request: the connection stayed open.
    ASSERT_TRUE(sock.send(
        "GET /echo?msg=again HTTP/1.1\r\nHost: t\r\n\r\n"));
    auto second = sock.readResponses(1);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].body, "again");
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    // Both requests in one write; responses must come back in order.
    ASSERT_TRUE(sock.send("GET /echo?msg=one HTTP/1.1\r\nHost: t\r\n\r\n"
                          "GET /echo?msg=two HTTP/1.1\r\nHost: t\r\n"
                          "Connection: close\r\n\r\n"));
    auto resp = sock.readResponses(2);
    ASSERT_EQ(resp.size(), 2u);
    EXPECT_EQ(resp[0].body, "one");
    EXPECT_EQ(resp[1].body, "two");
}

TEST_F(ServerTest, ConnectionCloseIsHonored)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("GET /hello HTTP/1.1\r\nHost: t\r\n"
                          "Connection: close\r\n\r\n"));
    auto resp = sock.readResponses(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].headers.at("connection"), "close");
    // A follow-up on the same socket gets no response (server closed).
    sock.send("GET /hello HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_TRUE(sock.readResponses(1).empty());
}

TEST_F(ServerTest, PersistentClientReusesConnection)
{
    PersistentClient client("127.0.0.1", server.port());
    for (int i = 0; i < 5; i++) {
        auto r = client.get("/hello");
        ASSERT_TRUE(r.has_value()) << "request " << i;
        EXPECT_EQ(r->status, 200);
        EXPECT_EQ(r->body, "world");
    }
    EXPECT_TRUE(client.connected());
}

TEST_F(ServerTest, MalformedRequestGets400)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("BROKEN\r\n\r\n"));
    auto resp = sock.readResponses(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].status, 400);
}

TEST(ServerOptionsTest, ConnectionCapRejectsWith503)
{
    ServerOptions opts;
    opts.maxConnections = 2;
    HttpServer s(opts);
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));

    // Two keep-alive connections occupy the cap...
    RawSocket a(s.port()), b(s.port());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(a.send("GET / HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_TRUE(b.send("GET / HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_EQ(a.readResponses(1).size(), 1u);
    ASSERT_EQ(b.readResponses(1).size(), 1u);

    // ...so the third connect is rejected with a fast 503.
    RawSocket c(s.port());
    ASSERT_TRUE(c.ok());
    auto resp = c.readResponses(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].status, 503);
    s.stop();
}

TEST(ServerOptionsTest, WorkerCountResolvedAfterStart)
{
    ServerOptions opts;
    opts.workers = 3;
    HttpServer s(opts);
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));
    EXPECT_EQ(s.options().workers, 3);
    HttpClient client("127.0.0.1", s.port());
    EXPECT_EQ(client.get("/")->body, "ok");
    s.stop();
}

TEST(ServerOptionsTest, IdleConnectionsAreReaped)
{
    ServerOptions opts;
    opts.idleTimeoutMs = 100;
    HttpServer s(opts);
    s.route("GET", "/", [](const Request &) {
        return Response::ok("ok");
    });
    ASSERT_TRUE(s.start(0));
    RawSocket sock(s.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("GET / HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_EQ(sock.readResponses(1).size(), 1u);
    // Idle past the timeout: the server closes the connection, so the
    // next read returns EOF (no response bytes).
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    EXPECT_TRUE(sock.readResponses(1).empty());
    s.stop();
}

// ---------------------------------------------------------------------
// Chunked transfer coding, header hygiene, and content coding
// ---------------------------------------------------------------------

#include "web/encoding.hh"

TEST(HttpParse, ChunkedBodyDecoded)
{
    Request req;
    std::size_t consumed = 0;
    // Chunk extensions and trailers are accepted and discarded.
    std::string raw = "POST /api/x HTTP/1.1\r\n"
                      "Transfer-Encoding: chunked\r\n\r\n"
                      "4;ext=1\r\nWiki\r\n"
                      "5\r\npedia\r\n"
                      "0\r\n"
                      "X-Trailer: t\r\n"
                      "\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.body, "Wikipedia");
    EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParse, ChunkedIncrementalAndPipelined)
{
    Request req;
    std::size_t consumed = 0;
    std::string head = "POST /b HTTP/1.1\r\n"
                       "Transfer-Encoding: chunked\r\n\r\n";
    EXPECT_EQ(parseRequest(head, req, consumed), ParseResult::Incomplete);
    EXPECT_EQ(parseRequest(head + "5\r\nhel", req, consumed),
              ParseResult::Incomplete)
        << "mid-chunk data";
    EXPECT_EQ(parseRequest(head + "5\r\nhello\r\n0\r\n", req, consumed),
              ParseResult::Incomplete)
        << "trailer section not terminated";
    // A complete chunked request followed by a pipelined GET: consumed
    // must stop exactly at the chunked terminator.
    std::string full = head + "5\r\nhello\r\n0\r\n\r\n";
    std::string two = full + "GET /next HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.body, "hello");
    EXPECT_EQ(consumed, full.size());
    two.erase(0, consumed);
    ASSERT_EQ(parseRequest(two, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/next");
}

INSTANTIATE_TEST_SUITE_P(
    ChunkedCorpus, HttpMalformed,
    ::testing::Values(
        BadReq{"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
               "ZZ\r\nhi\r\n0\r\n\r\n",
               "non-hex chunk size"},
        BadReq{"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
               "5\r\nhelloXX0\r\n\r\n",
               "missing CRLF after chunk data"},
        BadReq{"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
               "FFFFFFFF\r\n",
               "chunk size beyond the body cap"},
        BadReq{"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
               "Content-Length: 5\r\n\r\n0\r\n\r\n",
               "both framings present (smuggling)"},
        BadReq{"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
               "unsupported transfer coding"},
        BadReq{"POST /x HTTP/1.1\r\nContent-Length: 3\r\n"
               "Content-Length: 3\r\n\r\nabc",
               "duplicate Content-Length"},
        BadReq{"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
               "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
               "duplicate Transfer-Encoding"}));

TEST(HttpParse, DuplicateListHeadersMerge)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET / HTTP/1.1\r\n"
                      "Accept-Encoding: gzip\r\n"
                      "Accept-Encoding: deflate;q=0.5\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.headers.at("accept-encoding"),
              "gzip, deflate;q=0.5");
}

TEST(HttpParse, PlusDecodedInQueryButNotPath)
{
    Request req;
    std::size_t consumed = 0;
    std::string raw = "GET /a+b?msg=hi+there&k+1=v+2 HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parseRequest(raw, req, consumed), ParseResult::Ok);
    EXPECT_EQ(req.path, "/a+b") << "'+' is literal in paths";
    EXPECT_EQ(req.queryParam("msg"), "hi there");
    EXPECT_EQ(req.queryParam("k 1"), "v 2") << "keys decode too";
}

TEST(UrlDecode, PlusHandling)
{
    EXPECT_EQ(urlDecode("a+b"), "a+b");
    EXPECT_EQ(urlDecode("a+b", true), "a b");
    EXPECT_EQ(urlDecode("a%2Bb", true), "a+b")
        << "percent-encoded plus stays a plus";
}

// Regression: parseResponse used to cast strtoll straight to size_t,
// so a negative or garbage Content-Length from a peer became a huge
// allocation / bogus frame. Both overloads must reject it.
TEST(HttpResponseParse, ContentLengthValidated)
{
    const char *bads[] = {
        "HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",
        "HTTP/1.1 200 OK\r\nContent-Length: abc\r\n\r\n",
        "HTTP/1.1 200 OK\r\nContent-Length: 999999999999\r\n\r\n",
        "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n"
        "Content-Length: 3\r\n\r\nabc",
    };
    for (const char *bad : bads) {
        std::size_t consumed = 0;
        EXPECT_FALSE(parseResponse(bad).has_value()) << bad;
        EXPECT_FALSE(parseResponse(bad, consumed).has_value()) << bad;
    }
    // Sanity: a valid frame still parses in both overloads.
    std::string good = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
    std::size_t consumed = 0;
    ASSERT_TRUE(parseResponse(good).has_value());
    auto r = parseResponse(good, consumed);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "hi");
    EXPECT_EQ(r->wireBodyBytes, 2u);
    EXPECT_EQ(consumed, good.size());
}

TEST(HttpResponseParse, ChunkedResponseFraming)
{
    std::string raw = "HTTP/1.1 200 OK\r\n"
                      "Transfer-Encoding: chunked\r\n\r\n"
                      "3\r\nfoo\r\n3\r\nbar\r\n0\r\n\r\n";
    std::string tail = "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n";
    std::size_t consumed = 0;
    auto r = parseResponse(raw + tail, consumed);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->body, "foobar");
    EXPECT_EQ(consumed, raw.size())
        << "pipelined follow-up stays in the buffer";
    ASSERT_TRUE(parseResponse(raw).has_value());
    EXPECT_EQ(parseResponse(raw)->body, "foobar");
    // Incomplete chunked data: need more bytes.
    std::string part = raw.substr(0, raw.size() - 4);
    EXPECT_FALSE(parseResponse(part, consumed).has_value());
}

TEST(Encoding, NegotiationPrefersGzip)
{
    if (!encodingSupported())
        GTEST_SKIP() << "built without zlib";
    EXPECT_EQ(negotiateEncoding("gzip, deflate"),
              ContentEncoding::Gzip);
    EXPECT_EQ(negotiateEncoding("deflate"), ContentEncoding::Deflate);
    EXPECT_EQ(negotiateEncoding("gzip;q=0, deflate"),
              ContentEncoding::Deflate)
        << "q=0 forbids a coding";
    EXPECT_EQ(negotiateEncoding("br"), ContentEncoding::Identity)
        << "unknown codings fall back to identity";
    EXPECT_EQ(negotiateEncoding("*"), ContentEncoding::Gzip)
        << "wildcard allows gzip";
    EXPECT_EQ(negotiateEncoding("deflate;q=1.0, gzip;q=0.5"),
              ContentEncoding::Deflate)
        << "client weights win";
    EXPECT_EQ(negotiateEncoding(""), ContentEncoding::Identity);
}

TEST(Encoding, RoundTripsBothCodings)
{
    if (!encodingSupported())
        GTEST_SKIP() << "built without zlib";
    std::string plain;
    for (int i = 0; i < 500; i++)
        plain += "{\"component\":\"GPU[" + std::to_string(i % 8) +
                 "].L1V\",\"level\":" + std::to_string(i) + "}";
    for (ContentEncoding enc :
         {ContentEncoding::Gzip, ContentEncoding::Deflate}) {
        std::string packed, unpacked;
        ASSERT_TRUE(compressBody(enc, plain, packed));
        EXPECT_LT(packed.size(), plain.size());
        ASSERT_TRUE(decompressBody(packed, unpacked, 1u << 20));
        EXPECT_EQ(unpacked, plain) << encodingName(enc);
    }
    // Corrupt data and over-limit inflation must fail cleanly.
    std::string packed, out;
    ASSERT_TRUE(compressBody(ContentEncoding::Gzip, plain, packed));
    EXPECT_FALSE(decompressBody(packed, out, 16))
        << "inflation past max_out is refused";
    packed[packed.size() / 2] ^= 0x5a;
    EXPECT_FALSE(decompressBody(packed, out, 1u << 20));
}

TEST_F(ServerTest, ChunkedPostReachesHandlerAndKeepsPipeline)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send("POST /body HTTP/1.1\r\nHost: t\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n"
                          "6\r\n{\"x\":1\r\n1\r\n}\r\n0\r\n\r\n"));
    auto resp = sock.readResponses(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].body, "{\"x\":1}");
    // The connection survives and the parser is aligned: a follow-up
    // request on the same socket answers normally.
    ASSERT_TRUE(sock.send("GET /hello HTTP/1.1\r\nHost: t\r\n\r\n"));
    auto next = sock.readResponses(1);
    ASSERT_EQ(next.size(), 1u);
    EXPECT_EQ(next[0].body, "world");
}

TEST_F(ServerTest, PersistentClientChunkedPost)
{
    PersistentClient client("127.0.0.1", server.port());
    std::string body(5000, 'x');
    body += "end";
    auto r = client.postChunked("/body", body, 512);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, body);
}

struct BadChunked
{
    const char *wire;
    const char *why;
};

class MalformedChunkedLive : public ServerTest,
                             public ::testing::WithParamInterface<BadChunked>
{
};

TEST_P(MalformedChunkedLive, Gets400AndClose)
{
    RawSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.send(GetParam().wire));
    auto resp = sock.readResponses(1);
    ASSERT_EQ(resp.size(), 1u) << GetParam().why;
    EXPECT_EQ(resp[0].status, 400) << GetParam().why;
    // The server must close rather than desync its parser.
    EXPECT_TRUE(sock.readResponses(1).empty()) << GetParam().why;
    // And the listener is unaffected: a fresh connection works.
    RawSocket again(server.port());
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE(again.send("GET /hello HTTP/1.1\r\nHost: t\r\n\r\n"));
    auto ok = again.readResponses(1);
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(ok[0].body, "world");
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MalformedChunkedLive,
    ::testing::Values(
        BadChunked{"POST /body HTTP/1.1\r\nHost: t\r\n"
                   "Transfer-Encoding: chunked\r\n\r\nZZ\r\nhi\r\n0\r\n\r\n",
                   "bad hex size"},
        BadChunked{"POST /body HTTP/1.1\r\nHost: t\r\n"
                   "Transfer-Encoding: chunked\r\n\r\n"
                   "5\r\nhelloXX0\r\n\r\n",
                   "missing CRLF after chunk"},
        BadChunked{"POST /body HTTP/1.1\r\nHost: t\r\n"
                   "Transfer-Encoding: chunked\r\n\r\nFFFFFFFF\r\n",
                   "chunk larger than the body cap"},
        BadChunked{"POST /body HTTP/1.1\r\nHost: t\r\n"
                   "Transfer-Encoding: chunked\r\n"
                   "Content-Length: 4\r\n\r\n0\r\n\r\n",
                   "both framings present"}));

TEST_F(ServerTest, LargeResponsesAreCompressedWhenAccepted)
{
    server.route("GET", "/big", [](const Request &) {
        std::string body;
        for (int i = 0; i < 400; i++)
            body += "line " + std::to_string(i) + " of filler text\n";
        return Response::ok(body);
    });
    PersistentClient client("127.0.0.1", server.port());

    auto identity = client.get("/big");
    ASSERT_TRUE(identity.has_value());
    EXPECT_EQ(identity->headers.count("content-encoding"), 0u)
        << "no Accept-Encoding, no compression";

    if (!encodingSupported())
        GTEST_SKIP() << "built without zlib";
    auto gz = client.get("/big", {{"Accept-Encoding", "gzip"}});
    ASSERT_TRUE(gz.has_value());
    ASSERT_EQ(gz->headers.at("content-encoding"), "gzip");
    EXPECT_EQ(gz->headers.at("vary"), "Accept-Encoding");
    EXPECT_LT(gz->wireBodyBytes, identity->body.size());
    EXPECT_EQ(gz->body, identity->body)
        << "client-side gunzip restores the identity bytes";

    // Small responses skip compression (opts_.compressMinBytes).
    auto small = client.get("/hello", {{"Accept-Encoding", "gzip"}});
    ASSERT_TRUE(small.has_value());
    EXPECT_EQ(small->headers.count("content-encoding"), 0u);
    EXPECT_EQ(small->body, "world");
}
