/**
 * @file
 * Shared test harness for memory-hierarchy unit tests: a scripted
 * requester and a fake memory responder.
 */

#ifndef AKITA_TESTS_MEM_HARNESS_HH
#define AKITA_TESTS_MEM_HARNESS_HH

#include <deque>
#include <map>
#include <vector>

#include "mem/msg.hh"
#include "sim/sim.hh"

namespace akita
{
namespace test
{

/** Issues a scripted list of memory requests and records responses. */
class Requester : public sim::TickingComponent
{
  public:
    Requester(sim::Engine *engine, const std::string &name,
              std::size_t issue_per_tick = 4)
        : TickingComponent(engine, name, sim::Freq::ghz(1)),
          issuePerTick_(issue_per_tick)
    {
        out = addPort("Out", 16);
    }

    /** Queues a request to send toward @p dst. */
    std::uint64_t
    enqueue(std::uint64_t addr, bool is_write, sim::Port *dst,
            std::uint32_t size = 4)
    {
        auto req = sim::makeMsg<mem::MemReq>(addr, size, is_write);
        req->dst = dst;
        pending_.push_back(req);
        return req->id();
    }

    bool
    tick() override
    {
        bool progress = false;
        for (std::size_t i = 0; i < issuePerTick_ && !pending_.empty();
             i++) {
            mem::MemReqPtr req = pending_.front();
            if (out->send(req) != sim::SendStatus::Ok)
                break;
            sendTimes[req->id()] = engine()->now();
            pending_.pop_front();
            progress = true;
        }
        while (true) {
            sim::MsgPtr msg = out->retrieveIncoming();
            if (msg == nullptr)
                break;
            auto rsp = sim::msgCast<mem::MemRsp>(msg);
            if (rsp != nullptr) {
                rspOrder.push_back(rsp->reqId);
                rspTimes[rsp->reqId] = engine()->now();
            }
            progress = true;
        }
        return progress;
    }

    sim::Port *out = nullptr;
    std::vector<std::uint64_t> rspOrder;
    std::map<std::uint64_t, sim::VTime> sendTimes;
    std::map<std::uint64_t, sim::VTime> rspTimes;

  private:
    std::size_t issuePerTick_;
    std::deque<mem::MemReqPtr> pending_;
};

/**
 * Answers every memory request after a fixed delay. Optionally answers
 * out of order (LIFO) to exercise reordering logic upstream.
 */
class FakeMemory : public sim::TickingComponent
{
  public:
    FakeMemory(sim::Engine *engine, const std::string &name,
               std::uint64_t delay_cycles = 4, bool lifo = false)
        : TickingComponent(engine, name, sim::Freq::ghz(1)),
          delayCycles_(delay_cycles), lifo_(lifo)
    {
        top = addPort("TopPort", 16);
    }

    bool
    tick() override
    {
        sim::VTime now = engine()->now();
        bool progress = false;

        // Respond to ready entries (FIFO or LIFO).
        while (!queue_.empty()) {
            std::size_t idx = lifo_ ? queue_.size() - 1 : 0;
            // LIFO still requires readiness.
            if (queue_[idx].readyAt > now) {
                bool anyReady = false;
                for (std::size_t i = 0; i < queue_.size(); i++) {
                    if (queue_[i].readyAt <= now) {
                        idx = i;
                        anyReady = true;
                        if (lifo_)
                            continue; // Find the last ready one.
                        break;
                    }
                }
                if (!anyReady)
                    break;
            }
            mem::MemRspPtr rsp = mem::makeRsp(*queue_[idx].req);
            rsp->dst = queue_[idx].returnTo;
            if (top->send(rsp) != sim::SendStatus::Ok)
                break;
            served++;
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(idx));
            progress = true;
        }

        while (true) {
            sim::MsgPtr msg = top->peekIncoming();
            if (msg == nullptr)
                break;
            auto req = sim::msgCast<mem::MemReq>(msg);
            if (req == nullptr) {
                top->retrieveIncoming();
                continue;
            }
            queue_.push_back(
                {req, msg->src,
                 now + delayCycles_ * freq().period()});
            reqsSeen.push_back(req->addr);
            top->retrieveIncoming();
            progress = true;
        }

        if (!progress) {
            for (const auto &e : queue_) {
                if (e.readyAt > now) {
                    scheduleTickAt(e.readyAt);
                    break;
                }
            }
        }
        return progress;
    }

    sim::Port *top = nullptr;
    std::vector<std::uint64_t> reqsSeen;
    int served = 0;

  private:
    struct Entry
    {
        mem::MemReqPtr req;
        sim::Port *returnTo;
        sim::VTime readyAt;
    };

    std::uint64_t delayCycles_;
    bool lifo_;
    std::vector<Entry> queue_;
};

} // namespace test
} // namespace akita

#endif // AKITA_TESTS_MEM_HARNESS_HH
