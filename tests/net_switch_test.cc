/**
 * @file
 * Tests for the multi-hop Switch component: routing, drops,
 * loop-guarding, and a three-switch ring topology with a switch-aware
 * responder (endpoints on a switched fabric must set Msg::finalDst).
 */

#include <gtest/gtest.h>

#include "mem/msg.hh"
#include "net/switch.hh"
#include "sim/sim.hh"

using namespace akita;

namespace
{

/**
 * A requester that addresses a switch fabric: requests carry finalDst
 * and a first-hop dst; responses are matched by request id.
 */
class FabricRequester : public sim::TickingComponent
{
  public:
    FabricRequester(sim::Engine *engine, const std::string &name)
        : TickingComponent(engine, name, sim::Freq::ghz(1))
    {
        out = addPort("Out", 16);
    }

    void
    enqueue(std::uint64_t addr, sim::Port *final_dst,
            sim::Port *first_hop)
    {
        auto req = sim::makeMsg<mem::MemReq>(addr, 4, false);
        req->finalDst = final_dst;
        req->dst = first_hop;
        pending_.push_back(req);
    }

    bool
    tick() override
    {
        bool progress = false;
        while (!pending_.empty()) {
            if (out->send(pending_.front()) != sim::SendStatus::Ok)
                break;
            pending_.erase(pending_.begin());
            progress = true;
        }
        while (true) {
            sim::MsgPtr m = out->retrieveIncoming();
            if (m == nullptr)
                break;
            if (auto rsp = sim::msgCast<mem::MemRsp>(m))
                responses.push_back(rsp->reqId);
            progress = true;
        }
        return progress;
    }

    sim::Port *out = nullptr;
    std::vector<std::uint64_t> responses;

  private:
    std::vector<mem::MemReqPtr> pending_;
};

/**
 * A memory endpoint for switched fabrics: replies carry finalDst (the
 * configured requester port) and dst (the local switch port).
 */
class FabricResponder : public sim::TickingComponent
{
  public:
    FabricResponder(sim::Engine *engine, const std::string &name)
        : TickingComponent(engine, name, sim::Freq::ghz(1))
    {
        top = addPort("TopPort", 16);
    }

    sim::Port *top = nullptr;
    sim::Port *replyFinalDst = nullptr;
    sim::Port *replyFirstHop = nullptr;
    std::vector<std::uint64_t> reqsSeen;

    bool
    tick() override
    {
        bool progress = false;
        while (true) {
            sim::MsgPtr m = top->peekIncoming();
            if (m == nullptr)
                break;
            auto req = sim::msgCast<mem::MemReq>(m);
            if (req == nullptr) {
                top->retrieveIncoming();
                continue;
            }
            auto rsp = mem::makeRsp(*req);
            rsp->finalDst = replyFinalDst;
            rsp->dst = replyFirstHop;
            if (top->send(rsp) != sim::SendStatus::Ok)
                break;
            reqsSeen.push_back(req->addr);
            top->retrieveIncoming();
            progress = true;
        }
        return progress;
    }
};

/** Requester -> switch -> responder over two links. */
struct StarRig
{
    sim::SerialEngine eng;
    FabricRequester req{&eng, "Req"};
    FabricResponder mem{&eng, "Mem"};
    net::Switch sw;
    sim::DirectConnection linkA{&eng, "LinkA", sim::kNanosecond};
    sim::DirectConnection linkB{&eng, "LinkB", sim::kNanosecond};
    sim::Port *portA;
    sim::Port *portB;

    StarRig() : sw(&eng, "Switch", sim::Freq::ghz(1), {})
    {
        portA = sw.addLink("PortA");
        portB = sw.addLink("PortB");
        linkA.plugIn(req.out);
        linkA.plugIn(portA);
        linkB.plugIn(portB);
        linkB.plugIn(mem.top);

        // Both endpoints are directly attached to this switch.
        sw.setRoute([](sim::Port *final_dst) { return final_dst; });

        mem.replyFinalDst = req.out;
        mem.replyFirstHop = portB;
    }
};

} // namespace

TEST(SwitchTest, RequestAndResponseRoundTrip)
{
    StarRig rig;
    rig.req.enqueue(0x100, rig.mem.top, rig.portA);
    rig.req.tickLater();
    rig.eng.run();

    ASSERT_EQ(rig.mem.reqsSeen.size(), 1u);
    EXPECT_EQ(rig.mem.reqsSeen[0], 0x100u);
    ASSERT_EQ(rig.req.responses.size(), 1u);
    EXPECT_GE(rig.sw.forwarded(), 2u); // Request + response.
    EXPECT_EQ(rig.sw.dropped(), 0u);
}

TEST(SwitchTest, ManyMessagesNoLossInOrder)
{
    StarRig rig;
    for (int i = 0; i < 64; i++)
        rig.req.enqueue(0x100 + static_cast<std::uint64_t>(i) * 4,
                        rig.mem.top, rig.portA);
    rig.req.tickLater();
    rig.eng.run();
    ASSERT_EQ(rig.mem.reqsSeen.size(), 64u);
    for (int i = 0; i < 64; i++)
        EXPECT_EQ(rig.mem.reqsSeen[static_cast<std::size_t>(i)],
                  0x100u + static_cast<std::uint64_t>(i) * 4);
    EXPECT_EQ(rig.req.responses.size(), 64u);
}

TEST(SwitchTest, UnroutableMessagesDropAndCount)
{
    StarRig rig;
    rig.sw.setRoute([](sim::Port *) -> sim::Port * { return nullptr; });
    rig.req.enqueue(0x200, rig.mem.top, rig.portA);
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.mem.reqsSeen.size(), 0u);
    EXPECT_EQ(rig.sw.dropped(), 1u);
}

TEST(SwitchTest, RoutingLoopIsDroppedNotLivelocked)
{
    StarRig rig;
    // Malicious route: always back toward the requester's link.
    rig.sw.setRoute(
        [&rig](sim::Port *) -> sim::Port * { return rig.portA; });
    rig.req.enqueue(0x300, rig.mem.top, rig.portA);
    rig.req.tickLater();
    rig.eng.run(); // Must terminate.
    EXPECT_EQ(rig.sw.dropped(), 1u);
}

TEST(SwitchTest, EgressQueueVisibleToAnalyzer)
{
    StarRig rig;
    auto buffers = rig.sw.buffers();
    // 2 link ports + 2 egress queues.
    EXPECT_EQ(buffers.size(), 4u);
    bool sawEgress = false;
    for (auto *b : buffers) {
        if (b->name().find("EgressBuf") != std::string::npos)
            sawEgress = true;
    }
    EXPECT_TRUE(sawEgress);
}

namespace
{

/**
 * Three switches in a ring; requester on SW0, responder on SW2.
 * Clockwise routing for requests (0 -> 1 -> 2) and for responses
 * (2 -> 0 via the 2->0 ring link).
 */
struct RingRig
{
    sim::SerialEngine eng;
    FabricRequester req{&eng, "Req"};
    FabricResponder mem{&eng, "Mem"};
    std::vector<std::unique_ptr<net::Switch>> switches;
    std::vector<std::unique_ptr<sim::DirectConnection>> links;
    sim::Port *host0 = nullptr; // SW0's host-side port.
    sim::Port *host2 = nullptr; // SW2's host-side port.
    sim::Port *entry[3];        // entry[i] = switch (i+1)%3's ingress
                                // port reachable from switch i.

    RingRig()
    {
        for (int i = 0; i < 3; i++) {
            switches.push_back(std::make_unique<net::Switch>(
                &eng, "SW" + std::to_string(i), sim::Freq::ghz(1),
                net::Switch::Config{}));
        }
        auto mkLink = [&](const std::string &name) {
            links.push_back(std::make_unique<sim::DirectConnection>(
                &eng, name, sim::kNanosecond));
            return links.back().get();
        };

        host0 = switches[0]->addLink("Host");
        auto *l0 = mkLink("Host0");
        l0->plugIn(req.out);
        l0->plugIn(host0);

        host2 = switches[2]->addLink("Host");
        auto *l2 = mkLink("Host2");
        l2->plugIn(mem.top);
        l2->plugIn(host2);

        for (int i = 0; i < 3; i++) {
            int j = (i + 1) % 3;
            auto *link =
                mkLink("Ring" + std::to_string(i) + std::to_string(j));
            sim::Port *a = switches[static_cast<std::size_t>(i)]
                               ->addLink("To" + std::to_string(j));
            sim::Port *b = switches[static_cast<std::size_t>(j)]
                               ->addLink("From" + std::to_string(i));
            link->plugIn(a);
            link->plugIn(b);
            entry[i] = b;
        }

        switches[0]->setRoute([this](sim::Port *fd) -> sim::Port * {
            if (fd == req.out)
                return fd;       // Locally attached.
            return entry[0];     // Clockwise toward SW1.
        });
        switches[1]->setRoute([this](sim::Port *fd) -> sim::Port * {
            (void)fd;
            return entry[1];     // Clockwise toward SW2.
        });
        switches[2]->setRoute([this](sim::Port *fd) -> sim::Port * {
            if (fd == mem.top)
                return fd;
            return entry[2];     // Clockwise toward SW0 (responses).
        });

        mem.replyFinalDst = req.out;
        mem.replyFirstHop = host2;
    }
};

} // namespace

TEST(SwitchTest, RingDeliversAcrossMultipleHops)
{
    RingRig rig;
    rig.req.enqueue(0x4000, rig.mem.top, rig.host0);
    rig.req.tickLater();
    rig.eng.run();

    ASSERT_EQ(rig.mem.reqsSeen.size(), 1u);
    ASSERT_EQ(rig.req.responses.size(), 1u);
    // Request crosses SW0, SW1, SW2; response crosses SW2, SW0.
    EXPECT_GE(rig.switches[0]->forwarded(), 2u);
    EXPECT_GE(rig.switches[1]->forwarded(), 1u);
    EXPECT_GE(rig.switches[2]->forwarded(), 2u);
    EXPECT_EQ(rig.switches[1]->dropped(), 0u);
}

TEST(SwitchTest, RingHandlesBurstWithBackpressure)
{
    RingRig rig;
    for (int i = 0; i < 64; i++)
        rig.req.enqueue(0x4000 + static_cast<std::uint64_t>(i) * 64,
                        rig.mem.top, rig.host0);
    rig.req.tickLater();
    rig.eng.run();
    EXPECT_EQ(rig.mem.reqsSeen.size(), 64u);
    EXPECT_EQ(rig.req.responses.size(), 64u);
    EXPECT_EQ(rig.switches[0]->dropped(), 0u);
    EXPECT_EQ(rig.switches[1]->dropped(), 0u);
    EXPECT_EQ(rig.switches[2]->dropped(), 0u);
}

// ---------------------------------------------------------------------
// Ring topology integrated into the full platform
// ---------------------------------------------------------------------

#include "gpu/platform.hh"
#include "workloads/workloads.hh"

TEST(RingPlatform, CompletesAllPaperBenchmarks)
{
    for (const auto &b : akita::workloads::paperSuite(0.02)) {
        akita::gpu::PlatformConfig cfg =
            akita::gpu::PlatformConfig::mcm4(
                akita::gpu::GpuConfig::tiny());
        cfg.topology = akita::gpu::NetworkTopology::Ring;
        akita::gpu::Platform plat(cfg);
        akita::gpu::KernelDescriptor k = b.kernel;
        plat.launchKernel(&k);
        EXPECT_EQ(plat.run(),
                  akita::gpu::Platform::RunStatus::Completed)
            << b.name;
        std::uint64_t dropped = 0;
        for (auto *sw : plat.ringSwitches())
            dropped += sw->dropped();
        EXPECT_EQ(dropped, 0u) << b.name;
    }
}

TEST(RingPlatform, TrafficActuallyCrossesSwitches)
{
    akita::gpu::PlatformConfig cfg =
        akita::gpu::PlatformConfig::mcm4(akita::gpu::GpuConfig::tiny());
    cfg.topology = akita::gpu::NetworkTopology::Ring;
    akita::gpu::Platform plat(cfg);
    // 4 chiplets -> 2 rings x 4 switches.
    EXPECT_EQ(plat.ringSwitches().size(), 8u);

    akita::workloads::MemCopyParams p;
    p.bytes = 1 << 19;
    auto k = akita::workloads::makeMemCopy(p);
    plat.launchKernel(&k);
    plat.run();

    std::uint64_t forwarded = 0;
    for (auto *sw : plat.ringSwitches())
        forwarded += sw->forwarded();
    EXPECT_GT(forwarded, 1000u);
}

TEST(RingPlatform, DeterministicAcrossRuns)
{
    auto once = []() {
        akita::gpu::PlatformConfig cfg =
            akita::gpu::PlatformConfig::mcm4(
                akita::gpu::GpuConfig::tiny());
        cfg.topology = akita::gpu::NetworkTopology::Ring;
        akita::gpu::Platform plat(cfg);
        akita::workloads::FirParams fp;
        fp.numSamples = 1 << 14;
        auto k = akita::workloads::makeFir(fp);
        plat.launchKernel(&k);
        plat.run();
        return plat.engine().now();
    };
    EXPECT_EQ(once(), once());
}

TEST(RingPlatform, SlowerLinksSlowRemoteTraffic)
{
    // Peak RDMA residency is bounded by the upstream MSHR budget, so
    // hop latency shows up as *time spent* at that residency — i.e.
    // completion time — rather than a higher peak.
    auto completionTime = [](akita::sim::VTime hop) {
        akita::gpu::PlatformConfig cfg =
            akita::gpu::PlatformConfig::mcm4(
                akita::gpu::GpuConfig::tiny());
        cfg.topology = akita::gpu::NetworkTopology::Ring;
        cfg.ringLinkLatency = hop;
        akita::gpu::Platform plat(cfg);
        akita::workloads::Im2ColParams p;
        p.batch = 16;
        auto k = akita::workloads::makeIm2Col(p);
        plat.launchKernel(&k);
        EXPECT_EQ(plat.run(),
                  akita::gpu::Platform::RunStatus::Completed);
        return plat.engine().now();
    };

    akita::sim::VTime fast =
        completionTime(5 * akita::sim::kNanosecond);
    akita::sim::VTime slow =
        completionTime(200 * akita::sim::kNanosecond);
    EXPECT_GT(slow, fast);
}
