/**
 * @file
 * Tests for the conservative-PDES domain engine: the latency-derived
 * partitioner, bit-identical event order against the serial engine at
 * one domain, cross-domain message ordering under backpressure,
 * zero-lookahead rejection, the full monitor contract, and the RTM
 * monitor surface driving a GPU platform split across domains.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "gpu/platform.hh"
#include "json/json.hh"
#include "rtm/monitor.hh"
#include "sim/sim.hh"
#include "web/client.hh"

using namespace akita;
using namespace akita::sim;

namespace
{

/** Records the (time, handler) sequence of executed events. */
class OrderHook : public Hook
{
  public:
    void
    func(HookCtx &ctx) override
    {
        if (ctx.pos != &hookPosBeforeEvent)
            return;
        auto *e = static_cast<Event *>(ctx.item);
        std::lock_guard<std::mutex> lk(mu_);
        order.emplace_back(e->time(), e->handler());
    }

    std::vector<std::pair<VTime, EventHandler *>> order;

  private:
    std::mutex mu_;
};

/** A handler that re-schedules itself a fixed number of times. */
class ChainHandler : public EventHandler
{
  public:
    ChainHandler(Engine *eng, int id, VTime period, int count)
        : eng_(eng), id_(id), period_(period), remaining_(count)
    {
    }

    void
    handle(Event &e) override
    {
        fired_++;
        times_.push_back(e.time());
        if (--remaining_ > 0)
            eng_->schedule(
                std::make_unique<Event>(e.time() + period_, this));
    }

    std::string
    handlerName() const override
    {
        return "Chain" + std::to_string(id_);
    }

    int id() const { return id_; }
    int fired() const { return fired_; }
    const std::vector<VTime> &times() const { return times_; }

  private:
    Engine *eng_;
    int id_;
    VTime period_;
    int remaining_;
    int fired_ = 0;
    std::vector<VTime> times_;
};

/** The deterministic multi-handler workload from the parallel tests. */
std::vector<std::unique_ptr<ChainHandler>>
buildScenario(Engine &eng)
{
    std::vector<std::unique_ptr<ChainHandler>> handlers;
    const VTime periods[] = {2, 3, 5, 2, 3, 5, 4, 6};
    for (int i = 0; i < 8; i++) {
        handlers.push_back(std::make_unique<ChainHandler>(
            &eng, i, periods[i], 50));
        eng.schedule(std::make_unique<Event>(
            static_cast<VTime>(i % 2), handlers.back().get()));
    }
    return handlers;
}

std::vector<std::pair<VTime, int>>
normalize(const std::vector<std::pair<VTime, EventHandler *>> &trace,
          const std::vector<std::unique_ptr<ChainHandler>> &handlers)
{
    std::map<EventHandler *, int> ids;
    for (const auto &h : handlers)
        ids[h.get()] = h->id();
    std::vector<std::pair<VTime, int>> out;
    out.reserve(trace.size());
    for (const auto &rec : trace)
        out.emplace_back(rec.first, ids.at(rec.second));
    return out;
}

class TestMsg : public Msg
{
  public:
    static constexpr MsgKind kKind = MsgKind::TestA;

    explicit TestMsg(int v) : Msg(kKind), value(v) {}

    const char *kind() const override { return "TestMsg"; }

    int value;
};

/** Scripted node: re-sends its outbox, drains its inbox at a rate. */
class Node : public TickingComponent
{
  public:
    Node(Engine *engine, const std::string &name, std::size_t buf_cap)
        : TickingComponent(engine, name, Freq::ghz(1))
    {
        in = addPort("In", buf_cap);
    }

    bool
    tick() override
    {
        bool progress = false;
        while (!outbox.empty()) {
            MsgPtr m = outbox.front();
            m->dst = target;
            if (in->send(m) != SendStatus::Ok)
                break;
            outbox.erase(outbox.begin());
            progress = true;
        }
        for (std::size_t i = 0; i < drainPerTick; i++) {
            MsgPtr m = in->retrieveIncoming();
            if (m == nullptr)
                break;
            received.push_back(msgCast<TestMsg>(m)->value);
            progress = true;
        }
        return progress;
    }

    Port *in = nullptr;
    Port *target = nullptr;
    std::vector<MsgPtr> outbox;
    std::vector<int> received;
    std::size_t drainPerTick = 4;
};

} // namespace

// ---- The partitioner ----

TEST(DomainPartitioner, ZeroLatencyEdgesNeverCut)
{
    DomainEngine eng(3);
    Node a(&eng, "A", 4), b(&eng, "B", 4), c(&eng, "C", 4),
        d(&eng, "D", 4);
    DirectConnection ab(&eng, "AB", 0);
    ab.plugIn(a.in);
    ab.plugIn(b.in);
    DirectConnection bc(&eng, "BC", 10 * kNanosecond);
    bc.plugIn(b.in);
    bc.plugIn(c.in);
    DirectConnection cd(&eng, "CD", 20 * kNanosecond);
    cd.plugIn(c.in);
    cd.plugIn(d.in);

    const DomainPartition &part = eng.partition();
    EXPECT_EQ(part.numDomains, 3);
    // The zero-latency pair is inseparable; everything else splits.
    EXPECT_EQ(part.domainOf.at(&a), part.domainOf.at(&b));
    EXPECT_NE(part.domainOf.at(&b), part.domainOf.at(&c));
    EXPECT_NE(part.domainOf.at(&c), part.domainOf.at(&d));
    // Domain 0 holds the earliest-registered component.
    EXPECT_EQ(part.domainOf.at(&a), 0);
    // Every cross edge carries the crossing connection's latency.
    for (const auto &e : part.edges)
        EXPECT_GT(e.lookahead, 0u);
}

TEST(DomainPartitioner, AgglomeratesCheapestEdgesFirst)
{
    DomainEngine eng(2);
    Node a(&eng, "A", 4), b(&eng, "B", 4), c(&eng, "C", 4),
        d(&eng, "D", 4);
    // A-B and C-D are tightly coupled (1ns); the B-C bridge is 50ns.
    DirectConnection ab(&eng, "AB", kNanosecond);
    ab.plugIn(a.in);
    ab.plugIn(b.in);
    DirectConnection cd(&eng, "CD", kNanosecond);
    cd.plugIn(c.in);
    cd.plugIn(d.in);
    DirectConnection bridge(&eng, "Bridge", 50 * kNanosecond);
    bridge.plugIn(b.in);
    bridge.plugIn(c.in);

    const DomainPartition &part = eng.partition();
    EXPECT_EQ(part.numDomains, 2);
    EXPECT_EQ(part.domainOf.at(&a), part.domainOf.at(&b));
    EXPECT_EQ(part.domainOf.at(&c), part.domainOf.at(&d));
    EXPECT_NE(part.domainOf.at(&a), part.domainOf.at(&c));
    // The only cut is the bridge: lookahead 50ns each way.
    ASSERT_EQ(part.edges.size(), 2u);
    for (const auto &e : part.edges)
        EXPECT_EQ(e.lookahead, 50 * kNanosecond);
}

TEST(DomainPartitioner, PinsWinOverTheTarget)
{
    DomainEngine eng(1);
    Node a(&eng, "A", 4), b(&eng, "B", 4);
    DirectConnection ab(&eng, "AB", 5 * kNanosecond);
    ab.plugIn(a.in);
    ab.plugIn(b.in);
    eng.pinComponent(&a, 0);
    eng.pinComponent(&b, 1);

    const DomainPartition &part = eng.partition();
    EXPECT_EQ(part.numDomains, 2);
    EXPECT_EQ(part.domainOf.at(&a), 0);
    EXPECT_EQ(part.domainOf.at(&b), 1);
}

// ---- Core engine contract (one domain) ----

TEST(DomainEngineCore, RunsEventsInTimeOrder)
{
    DomainEngine eng(1);
    std::mutex mu;
    std::vector<VTime> seen;
    for (VTime t : {400u, 100u, 300u, 200u}) {
        eng.scheduleAt(t, "t", [&seen, &mu, &eng]() {
            std::lock_guard<std::mutex> lk(mu);
            seen.push_back(eng.now());
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Drained);
    EXPECT_EQ(seen, (std::vector<VTime>{100, 200, 300, 400}));
    EXPECT_EQ(eng.now(), 400u);
    EXPECT_EQ(eng.eventCount(), 4u);
    EXPECT_EQ(eng.scheduledCount(), 4u);
}

TEST(DomainEngineCore, OneDomainMatchesSerialEngineOrderExactly)
{
    SerialEngine serial;
    OrderHook serialHook;
    serial.acceptHook(&serialHook);
    auto serialHandlers = buildScenario(serial);
    EXPECT_EQ(serial.run(), RunResult::Drained);

    DomainEngine dom(1);
    OrderHook domHook;
    dom.acceptHook(&domHook);
    auto domHandlers = buildScenario(dom);
    EXPECT_EQ(dom.run(), RunResult::Drained);

    auto a = normalize(serialHook.order, serialHandlers);
    auto b = normalize(domHook.order, domHandlers);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a, b) << "1-domain order diverged from serial";
    EXPECT_EQ(dom.eventCount(), serial.eventCount());
    EXPECT_EQ(dom.now(), serial.now());
}

TEST(DomainEngineCore, HandlersScheduleMoreEvents)
{
    DomainEngine eng(1);
    std::atomic<int> fired{0};
    std::function<void()> chain = [&]() {
        if (fired.fetch_add(1) + 1 < 10)
            eng.scheduleAt(eng.now() + 10, "chain", chain);
    };
    eng.scheduleAt(0, "chain", chain);
    eng.run();
    EXPECT_EQ(fired.load(), 10);
    EXPECT_EQ(eng.now(), 90u);
}

TEST(DomainEngineCore, SchedulingInPastThrows)
{
    DomainEngine eng(1);
    eng.scheduleAt(100, "x", []() {});
    eng.run();
    // Idle engine: external schedules obey the serial-engine contract.
    EXPECT_THROW(eng.scheduleAt(50, "late", []() {}),
                 std::runtime_error);
    EXPECT_NO_THROW(eng.scheduleAt(100, "now", []() {}));

    // From a handler (the domain's own context) the past is also
    // rejected — this is the exact serial semantics 1-domain preserves.
    DomainEngine eng2(1);
    bool threw = false;
    eng2.scheduleAt(100, "h", [&eng2, &threw]() {
        try {
            eng2.scheduleAt(50, "late", []() {});
        } catch (const std::runtime_error &) {
            threw = true;
        }
    });
    eng2.run();
    EXPECT_TRUE(threw);
}

TEST(DomainEngineCore, HandlerExceptionPropagatesFromRun)
{
    DomainEngine eng(1);
    eng.scheduleAt(10, "boom", []() {
        throw std::runtime_error("handler failure");
    });
    EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(DomainEngineCore, StopAbortsRun)
{
    DomainEngine eng(1);
    std::atomic<int> fired{0};
    for (int i = 1; i <= 100; i++) {
        eng.scheduleAt(static_cast<VTime>(i * 10), "n", [&]() {
            if (fired.fetch_add(1) + 1 == 5)
                eng.stop();
        });
    }
    EXPECT_EQ(eng.run(), RunResult::Stopped);
    EXPECT_LT(fired.load(), 100);
    EXPECT_EQ(eng.run(), RunResult::Drained);
    EXPECT_EQ(fired.load(), 100);
}

TEST(DomainEngineCore, PauseAndResumeFromAnotherThread)
{
    DomainEngine eng(1);
    std::atomic<int> fired{0};
    std::function<void()> chain = [&]() {
        if (fired.fetch_add(1) + 1 < 10000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });

    while (fired.load() < 100)
        std::this_thread::yield();
    eng.pause();
    EXPECT_TRUE(eng.paused());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    int atPause = fired.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // At most the in-flight event finishes after pause lands.
    EXPECT_LE(fired.load(), atPause + 1);

    eng.resume();
    runner.join();
    EXPECT_EQ(fired.load(), 10000);
}

TEST(DomainEngineCore, WaitWhenEmptyBlocksAndExternalScheduleRevives)
{
    DomainEngine eng(1);
    eng.setWaitWhenEmpty(true);

    std::atomic<int> fired{0};
    eng.scheduleAt(10, "a", [&]() { fired++; });

    std::thread runner([&]() { eng.run(); });

    while (fired.load() < 1)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(eng.running());
    EXPECT_TRUE(eng.drainedWaiting());

    // RTM's Tick / kick-start path: an external schedule revives it.
    eng.scheduleAt(eng.now() + 5, "b", [&]() {
        fired++;
        eng.stop();
    });
    runner.join();
    EXPECT_EQ(fired.load(), 2);
    EXPECT_FALSE(eng.running());
}

TEST(DomainEngineCore, WithLockGivesConsistentSnapshots)
{
    DomainEngine eng(1);

    std::int64_t a = 0, b = 0;
    std::function<void()> chain = [&]() {
        a++;
        b++;
        if (a < 20000)
            eng.scheduleAt(eng.now() + 1, "c", chain);
    };
    eng.scheduleAt(0, "c", chain);

    std::thread runner([&]() { eng.run(); });
    for (int i = 0; i < 200; i++) {
        eng.withLock([&]() { EXPECT_EQ(a, b); });
    }
    runner.join();
    EXPECT_EQ(a, 20000);
}

TEST(DomainEngineCore, WithLockFromHandlerRunsInline)
{
    DomainEngine eng(1);
    bool ran = false;
    eng.scheduleAt(10, "h", [&]() {
        eng.withLock([&ran]() { ran = true; });
    });
    eng.run();
    EXPECT_TRUE(ran);
}

TEST(DomainEngineCore, InspectableFieldsAndHooks)
{
    DomainEngine eng(1);
    eng.scheduleAt(5, "e", []() {});
    const auto &fields = eng.fields();
    EXPECT_NE(fields.find("now_ps"), nullptr);
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 1);

    class CountingHook : public Hook
    {
      public:
        void
        func(HookCtx &ctx) override
        {
            if (ctx.pos == &hookPosBeforeEvent)
                before++;
            if (ctx.pos == &hookPosAfterEvent)
                after++;
            if (ctx.pos == &hookPosQueueDrained)
                drained++;
        }

        std::atomic<int> before{0}, after{0}, drained{0};
    };

    CountingHook hook;
    eng.acceptHook(&hook);
    for (int i = 0; i < 7; i++)
        eng.scheduleAt(static_cast<VTime>(10 + i), "e", []() {});
    eng.run();
    EXPECT_EQ(hook.before.load(), 8);
    EXPECT_EQ(hook.after.load(), 8);
    EXPECT_EQ(hook.drained.load(), 1);
    EXPECT_EQ(fields.find("queue_len")->getter().intVal(), 0);
    EXPECT_EQ(fields.find("total_events")->getter().intVal(), 8);
    EXPECT_EQ(fields.find("domains")->getter().intVal(), 1);
}

// ---- Cross-domain execution ----

TEST(DomainEngineCross, MessagesArriveInOrderUnderBackpressure)
{
    // Sender and receiver pinned to different domains; the receiver's
    // two-slot buffer forces backpressure, so wake events cross the
    // domain boundary in both directions (delivery one way, buffer-
    // freed wakes the other). Conservation and FIFO must hold — this
    // is the ordering regression the safe-window protocol guarantees.
    DomainEngine eng(2);
    Node a(&eng, "A", 4), b(&eng, "B", 2);
    DirectConnection conn(&eng, "Conn", 5 * kNanosecond);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    eng.pinComponent(&a, 0);
    eng.pinComponent(&b, 1);

    a.target = b.in;
    b.drainPerTick = 1;
    for (int i = 0; i < 20; i++)
        a.outbox.push_back(makeMsg<TestMsg>(i));
    a.tickLater();

    EXPECT_EQ(eng.numDomains(), 2);
    EXPECT_EQ(eng.run(), RunResult::Drained);

    ASSERT_EQ(b.received.size(), 20u);
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(b.received[i], i);
}

TEST(DomainEngineCross, EndStateMatchesSerialEngine)
{
    // Same rig on the serial engine and on a 2-domain engine: the
    // delivered data must be identical (the end-state determinism bar;
    // wall-clock interleaving and wake alignment may differ).
    auto runRig = [](Engine &eng, DomainEngine *de) {
        Node a(&eng, "A", 4), b(&eng, "B", 2);
        DirectConnection conn(&eng, "Conn", 5 * kNanosecond);
        conn.plugIn(a.in);
        conn.plugIn(b.in);
        if (de != nullptr) {
            de->pinComponent(&a, 0);
            de->pinComponent(&b, 1);
        }
        a.target = b.in;
        b.drainPerTick = 1;
        for (int i = 0; i < 30; i++)
            a.outbox.push_back(makeMsg<TestMsg>(i));
        a.tickLater();
        EXPECT_EQ(eng.run(), RunResult::Drained);
        return b.received;
    };

    SerialEngine serial;
    std::vector<int> serialRx = runRig(serial, nullptr);

    DomainEngine dom(2);
    std::vector<int> domRx = runRig(dom, &dom);

    EXPECT_EQ(domRx, serialRx);
}

TEST(DomainEngineCross, ZeroLookaheadRejectedAtRunByName)
{
    // A pin-forced cut across a zero-latency connection has no safe
    // window; run() must refuse up front, naming the connection —
    // not deadlock, not silently serialize.
    DomainEngine eng(2);
    Node a(&eng, "A", 4), b(&eng, "B", 4);
    DirectConnection conn(&eng, "ZeroLatConn", 0);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    eng.pinComponent(&a, 0);
    eng.pinComponent(&b, 1);
    a.tickLater();

    try {
        eng.run();
        FAIL() << "expected run() to reject the zero-lookahead cut";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("ZeroLatConn"),
                  std::string::npos)
            << "message must name the connection: " << e.what();
    }
}

TEST(DomainEngineCross, PerDomainStatusSumsToTotals)
{
    DomainEngine eng(2);
    Node a(&eng, "A", 8), b(&eng, "B", 8);
    DirectConnection conn(&eng, "Conn", 5 * kNanosecond);
    conn.plugIn(a.in);
    conn.plugIn(b.in);
    eng.pinComponent(&a, 0);
    eng.pinComponent(&b, 1);
    a.target = b.in;
    for (int i = 0; i < 10; i++)
        a.outbox.push_back(makeMsg<TestMsg>(i));
    a.tickLater();
    EXPECT_EQ(eng.run(), RunResult::Drained);

    std::uint64_t sum = 0;
    for (int i = 0; i < eng.numDomains(); i++) {
        DomainEngine::DomainStatus st = eng.domainStatus(i);
        sum += st.events;
        EXPECT_EQ(st.queueLen, 0u);
        // All clocks synchronized at global drain.
        EXPECT_EQ(st.clock, eng.now());
    }
    EXPECT_EQ(sum, eng.eventCount());
    ASSERT_EQ(eng.domainMemberNames().size(), 2u);
    EXPECT_EQ(eng.domainMemberNames()[0][0], "A");
    EXPECT_EQ(eng.domainMemberNames()[1][0], "B");
}

// ---- The RTM monitor surface against a domain-engine platform ----

namespace
{

gpu::KernelDescriptor
smallKernel(std::uint32_t wgs)
{
    gpu::KernelDescriptor k;
    k.name = "small";
    k.numWorkGroups = wgs;
    k.wavefrontsPerWG = 2;
    k.trace = [](std::uint32_t wg, std::uint32_t wf) {
        std::vector<gpu::WfOp> ops;
        for (int i = 0; i < 4; i++) {
            ops.push_back(gpu::WfOp::load(
                0x10000ull + (wg * 64 + wf * 16 + i) * 4096, 64, 2));
        }
        return ops;
    };
    return k;
}

} // namespace

TEST(DomainEngineRtm, PlatformSelectsEngineKindAndPartitions)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.engineKind = gpu::EngineKind::Domain;
    cfg.domains = 4;
    gpu::Platform plat(cfg);
    auto *de = dynamic_cast<DomainEngine *>(&plat.engine());
    ASSERT_NE(de, nullptr);
    EXPECT_EQ(de->requestedDomains(), 4);
    EXPECT_EQ(de->numDomains(), 4);
    // Domain 0 contains the first-built component: the driver.
    const auto &members = de->domainMemberNames();
    ASSERT_FALSE(members.empty());
    bool driverInZero = false;
    for (const auto &name : members[0])
        driverInZero = driverInZero || name == "Driver";
    EXPECT_TRUE(driverInZero);
    // Every cross-domain edge has positive lookahead on this topology.
    for (const auto &e : de->partition().edges)
        EXPECT_GT(e.lookahead, 0u);
}

TEST(DomainEngineRtm, ApplyEngineArgsParsesFlags)
{
    gpu::PlatformConfig cfg;
    const char *argvConst[] = {"prog", "--engine=domain",
                               "--domains=3"};
    gpu::applyEngineArgs(cfg, 3, const_cast<char **>(argvConst));
    EXPECT_EQ(cfg.engineKind, gpu::EngineKind::Domain);
    EXPECT_EQ(cfg.domains, 3);
}

TEST(DomainEngineRtm, PlatformRunMatchesSerialCompletion)
{
    auto serialCfg = gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    gpu::Platform serialPlat(serialCfg);
    auto k1 = smallKernel(16);
    serialPlat.launchKernel(&k1);
    ASSERT_EQ(serialPlat.run(), gpu::Platform::RunStatus::Completed);

    auto domCfg = gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    domCfg.engineKind = gpu::EngineKind::Domain;
    domCfg.domains = 4;
    gpu::Platform domPlat(domCfg);
    auto k2 = smallKernel(16);
    domPlat.launchKernel(&k2);
    ASSERT_EQ(domPlat.run(), gpu::Platform::RunStatus::Completed);

    EXPECT_GT(domPlat.engine().now(), 0u);
    EXPECT_GT(domPlat.engine().eventCount(), 0u);
}

TEST(DomainEngineRtm, FullMonitorSurface)
{
    gpu::PlatformConfig cfg =
        gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.engineKind = gpu::EngineKind::Domain;
    cfg.domains = 4;
    gpu::Platform plat(cfg);

    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    mcfg.sampleIntervalMs = 10;
    mcfg.hangThresholdSec = 0.15;
    rtm::Monitor mon(mcfg);
    mon.registerEngine(&plat.engine());
    for (auto *c : plat.components())
        mon.registerComponent(c);
    plat.driver().setProgressListener(&mon);
    plat.driver().setAutoStop(false);

    auto k = smallKernel(32);
    plat.launchKernel(&k);
    std::thread runner([&]() { plat.run(); });

    // Virtual time and events advance while the monitor watches.
    VTime t0 = plat.engine().now();
    for (int i = 0; i < 500 && !plat.driver().allKernelsDone(); i++) {
        mon.status();
        mon.bufferLevels(rtm::BufferSort::ByPercent, 5);
        mon.metricsSamplePass();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(plat.driver().allKernelsDone());
    EXPECT_GT(plat.engine().now(), t0);

    // Pause / resume through the monitor.
    mon.pause();
    EXPECT_TRUE(mon.paused());
    mon.resume();
    EXPECT_FALSE(mon.paused());

    // Hang detection: drained-waiting freezes the global time floor.
    rtm::HangStatus hang;
    for (int i = 0; i < 600; i++) {
        hang = mon.hangStatus();
        if (hang.hanging && hang.queueDrained)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(hang.hanging);
    EXPECT_TRUE(hang.queueDrained);

    // The per-component Tick button schedules into the live engine
    // cross-thread; the mailbox floor makes this legal at any clock.
    ASSERT_FALSE(plat.components().empty());
    EXPECT_TRUE(mon.tickComponent(plat.components().back()->name()));
    EXPECT_FALSE(mon.tickComponent("NoSuchComponent"));

    plat.engine().stop();
    runner.join();
}

// ---- The cost-weighted partitioner ----

TEST(DomainPartitionerWeighted, EmptyWeightsMatchStaticCut)
{
    SerialEngine host;
    Node a(&host, "A", 4), b(&host, "B", 4), c(&host, "C", 4),
        d(&host, "D", 4);
    DirectConnection ab(&host, "AB", kNanosecond);
    ab.plugIn(a.in);
    ab.plugIn(b.in);
    DirectConnection bc(&host, "BC", kNanosecond);
    bc.plugIn(b.in);
    bc.plugIn(c.in);
    DirectConnection cd(&host, "CD", kNanosecond);
    cd.plugIn(c.in);
    cd.plugIn(d.in);

    std::vector<Component *> comps{&a, &b, &c, &d};
    std::vector<Connection *> conns{&ab, &bc, &cd};
    DomainPartition stat = partitionDomains(comps, conns, 2);
    DomainPartition weighted =
        partitionDomains(comps, conns, 2, {}, {});
    EXPECT_EQ(stat.numDomains, weighted.numDomains);
    for (Component *comp : comps)
        EXPECT_EQ(stat.domainOf.at(comp), weighted.domainOf.at(comp));
}

TEST(DomainPartitionerWeighted, HeavyComponentsAreSpread)
{
    // A and C are hot; the balance cap (125% of ideal) keeps the two
    // heavyweights apart, where the unweighted cut packs {A,B,C}
    // together by index order.
    SerialEngine host;
    Node a(&host, "A", 4), b(&host, "B", 4), c(&host, "C", 4),
        d(&host, "D", 4);
    DirectConnection ab(&host, "AB", kNanosecond);
    ab.plugIn(a.in);
    ab.plugIn(b.in);
    DirectConnection bc(&host, "BC", kNanosecond);
    bc.plugIn(b.in);
    bc.plugIn(c.in);
    DirectConnection cd(&host, "CD", kNanosecond);
    cd.plugIn(c.in);
    cd.plugIn(d.in);

    std::vector<Component *> comps{&a, &b, &c, &d};
    std::vector<Connection *> conns{&ab, &bc, &cd};

    DomainPartition stat = partitionDomains(comps, conns, 2);
    EXPECT_EQ(stat.domainOf.at(&a), stat.domainOf.at(&c));

    DomainPartition part = partitionDomains(comps, conns, 2, {},
                                            {100, 1, 100, 1});
    EXPECT_EQ(part.numDomains, 2);
    EXPECT_NE(part.domainOf.at(&a), part.domainOf.at(&c));
}

TEST(DomainPartitionerWeighted, ZeroLatencyEdgesStillNeverCut)
{
    // Both heavyweights sit on a zero-latency wire: inseparable no
    // matter what the balance cap says.
    SerialEngine host;
    Node a(&host, "A", 4), b(&host, "B", 4), c(&host, "C", 4),
        d(&host, "D", 4);
    DirectConnection ab(&host, "AB", 0);
    ab.plugIn(a.in);
    ab.plugIn(b.in);
    DirectConnection bc(&host, "BC", 10 * kNanosecond);
    bc.plugIn(b.in);
    bc.plugIn(c.in);
    DirectConnection cd(&host, "CD", 10 * kNanosecond);
    cd.plugIn(c.in);
    cd.plugIn(d.in);

    std::vector<Component *> comps{&a, &b, &c, &d};
    std::vector<Connection *> conns{&ab, &bc, &cd};
    DomainPartition part = partitionDomains(comps, conns, 2, {},
                                            {100, 100, 1, 1});
    EXPECT_EQ(part.numDomains, 2);
    EXPECT_EQ(part.domainOf.at(&a), part.domainOf.at(&b));
    for (const auto &e : part.edges)
        EXPECT_GT(e.lookahead, 0u);
}

TEST(DomainPartitionerWeighted, PinsWinOverWeights)
{
    SerialEngine host;
    Node a(&host, "A", 4), b(&host, "B", 4), c(&host, "C", 4);
    DirectConnection ab(&host, "AB", 5 * kNanosecond);
    ab.plugIn(a.in);
    ab.plugIn(b.in);
    DirectConnection bc(&host, "BC", 5 * kNanosecond);
    bc.plugIn(b.in);
    bc.plugIn(c.in);

    std::vector<Component *> comps{&a, &b, &c};
    std::vector<Connection *> conns{&ab, &bc};
    std::unordered_map<const Component *, int> pins{{&a, 1}, {&c, 1}};
    // The weights scream "separate A and C" but the pins say no.
    DomainPartition part = partitionDomains(comps, conns, 2, pins,
                                            {100, 1, 100});
    EXPECT_EQ(part.domainOf.at(&a), 1);
    EXPECT_EQ(part.domainOf.at(&c), 1);
}

// ---- Adaptive repartitioning ----

namespace
{

/** Ring-capable forwarder: separate In/Out ports so node i can send
 * to node i+1 while also receiving from node i-1. Records the values
 * it drains, at a configurable rate (for backpressure). */
class FwdNode : public TickingComponent
{
  public:
    FwdNode(Engine *engine, const std::string &name,
            std::size_t buf_cap)
        : TickingComponent(engine, name, Freq::ghz(1))
    {
        in = addPort("In", buf_cap);
        out = addPort("Out", 16);
    }

    bool
    tick() override
    {
        bool progress = false;
        while (!outbox.empty()) {
            MsgPtr m = outbox.front();
            m->dst = next;
            if (out->send(m) != SendStatus::Ok)
                break;
            outbox.erase(outbox.begin());
            progress = true;
        }
        for (std::size_t i = 0; i < drainPerTick; i++) {
            MsgPtr m = in->retrieveIncoming();
            if (m == nullptr)
                break;
            received.push_back(msgCast<TestMsg>(m)->value);
            progress = true;
        }
        return progress;
    }

    Port *in = nullptr;
    Port *out = nullptr;
    Port *next = nullptr;
    std::vector<MsgPtr> outbox;
    std::vector<int> received;
    std::size_t drainPerTick = 4;
};

/** An unpinned ring of `n` forwarders on long-latency wires, where
 * node i sends to node i+1: the repartition rigs. The equal-latency
 * static cut packs nodes 0..n-3 into domain 0, so any hotspot on the
 * low nodes is maximally imbalanced until the engine re-cuts. */
struct RepartRing
{
    RepartRing(Engine &eng, int n, std::size_t buf_cap = 16)
    {
        for (int i = 0; i < n; i++) {
            nodes.push_back(std::make_unique<FwdNode>(
                &eng, "R" + std::to_string(i), buf_cap));
        }
        for (int i = 0; i < n; i++) {
            int j = (i + 1) % n;
            wires.push_back(std::make_unique<DirectConnection>(
                &eng, "W" + std::to_string(i), 500 * kNanosecond));
            wires.back()->plugIn(
                nodes[static_cast<std::size_t>(i)]->out);
            wires.back()->plugIn(
                nodes[static_cast<std::size_t>(j)]->in);
            nodes[static_cast<std::size_t>(i)]->next =
                nodes[static_cast<std::size_t>(j)]->in;
        }
    }

    FwdNode &operator[](std::size_t i) { return *nodes[i]; }

    std::vector<std::unique_ptr<FwdNode>> nodes;
    std::vector<std::unique_ptr<DirectConnection>> wires;
};

/** Eager trigger settings so small test workloads repartition. */
void
eagerRepartition(DomainEngine &eng)
{
    eng.setRepartition(true);
    eng.setRepartitionThreshold(1.1);
    eng.setRepartitionCooldown(0);
    eng.setRepartitionMinEvents(16);
}

} // namespace

TEST(DomainRepartition, CrossDomainFifoPreservedAcrossRepartition)
{
    // Alternating hotspots force migrations between phases while
    // senders push seq-numbered messages through two-slot receiver
    // buffers (backpressure wakes cross every cut). Delivery order
    // per sender must stay FIFO through every migration.
    DomainEngine eng(2);
    RepartRing ring(eng, 4, 2);
    eagerRepartition(eng);
    ring[1].drainPerTick = 1;
    ring[3].drainPerTick = 1;

    int seq01 = 0, seq23 = 0;
    for (int phase = 0; phase < 6; phase++) {
        FwdNode &hot = phase % 2 == 0 ? ring[0] : ring[2];
        int &seq = phase % 2 == 0 ? seq01 : seq23;
        for (int i = 0; i < 20; i++)
            hot.outbox.push_back(makeMsg<TestMsg>(seq++));
        hot.tickLater();
        ASSERT_EQ(eng.run(), RunResult::Drained) << "phase " << phase;
    }

    EXPECT_GE(eng.repartitionCount(), 1u)
        << "the alternating hotspot must trigger at least one re-cut";
    ASSERT_EQ(ring[1].received.size(),
              static_cast<std::size_t>(seq01));
    for (int i = 0; i < seq01; i++)
        EXPECT_EQ(ring[1].received[static_cast<std::size_t>(i)], i);
    ASSERT_EQ(ring[3].received.size(),
              static_cast<std::size_t>(seq23));
    for (int i = 0; i < seq23; i++)
        EXPECT_EQ(ring[3].received[static_cast<std::size_t>(i)], i);
}

TEST(DomainRepartition, MidRunRecutRebuildsRingsWithoutLosingMessages)
{
    // A waitWhenEmpty drain boundary is the live re-cut point: the
    // engine migrates components without ever leaving run(), and must
    // rebuild the per-edge SPSC mailbox rings for the new cut —
    // flushing any ring residue into the migration so nothing is lost.
    // Seq-numbered traffic spanning several live re-cuts proves no
    // message is dropped or reordered, and the ring capacity surfaced
    // by domainStatus() must track the rebuilt in-edge sets.
    DomainEngine eng(2);
    RepartRing ring(eng, 4, 2);
    eagerRepartition(eng);
    eng.setWaitWhenEmpty(true);
    ring[1].drainPerTick = 1;
    ring[3].drainPerTick = 1;

    class DrainHook : public Hook
    {
      public:
        void
        func(HookCtx &ctx) override
        {
            if (ctx.pos == &hookPosQueueDrained)
                drained++;
        }

        std::atomic<int> drained{0};
    };
    DrainHook hook;
    eng.acceptHook(&hook);

    std::thread runner([&]() { eng.run(); });
    auto waitDrains = [&](int target) {
        while (hook.drained.load() < target)
            std::this_thread::yield();
    };

    // The empty engine drains once immediately; each injection then
    // revives it for exactly one more drain (and one more mid-run
    // repartition opportunity). The hook fires before the boundary's
    // repartition, so additionally wait for drainedWaiting() — set
    // after it — or an eager injection could abort the re-cut by
    // failing its quiescence re-verify.
    constexpr int kPhases = 6;
    int seq01 = 0, seq23 = 0;
    for (int phase = 0; phase < kPhases; phase++) {
        waitDrains(phase + 1);
        while (!eng.drainedWaiting())
            std::this_thread::yield();
        FwdNode &hot = phase % 2 == 0 ? ring[0] : ring[2];
        int &seq = phase % 2 == 0 ? seq01 : seq23;
        for (int i = 0; i < 20; i++)
            hot.outbox.push_back(makeMsg<TestMsg>(seq++));
        hot.tickLater();
    }
    waitDrains(kPhases + 1);
    eng.stop();
    runner.join();

    EXPECT_GE(eng.repartitionCount(), 1u)
        << "the alternating hotspot must re-cut mid-run";

    // No message lost or reordered across any live re-cut.
    ASSERT_EQ(ring[1].received.size(),
              static_cast<std::size_t>(seq01));
    for (int i = 0; i < seq01; i++)
        EXPECT_EQ(ring[1].received[static_cast<std::size_t>(i)], i);
    ASSERT_EQ(ring[3].received.size(),
              static_cast<std::size_t>(seq23));
    for (int i = 0; i < seq23; i++)
        EXPECT_EQ(ring[3].received[static_cast<std::size_t>(i)], i);

    // The rings were rebuilt for the adopted cut: summed ring capacity
    // equals one full-size ring per current cross-domain edge, and
    // every ring drained dry at the final boundary.
    std::size_t caps = 0, occ = 0;
    for (int i = 0; i < eng.numDomains(); i++) {
        caps += eng.domainStatus(i).ringCapacity;
        occ += eng.domainStatus(i).ringOccupancy;
    }
    EXPECT_EQ(caps, eng.edgeInfos().size() * 256)
        << "per-edge rings must match the live edge set after re-cut";
    EXPECT_EQ(occ, 0u);
}

TEST(DomainRepartition, PinnedComponentsNeverMove)
{
    DomainEngine eng(2);
    RepartRing ring(eng, 5);
    eng.pinComponent(&ring[0], 0);
    eng.pinComponent(&ring[4], 1);
    eagerRepartition(eng);

    for (int phase = 0; phase < 6; phase++) {
        FwdNode &hot = phase % 2 == 0 ? ring[0] : ring[2];
        for (int i = 0; i < 24; i++)
            hot.outbox.push_back(makeMsg<TestMsg>(i));
        hot.tickLater();
        ASSERT_EQ(eng.run(), RunResult::Drained) << "phase " << phase;
        EXPECT_EQ(eng.domainOfComponent(&ring[0]), 0)
            << "pinned component moved at phase " << phase;
        EXPECT_EQ(eng.domainOfComponent(&ring[4]), 1)
            << "pinned component moved at phase " << phase;
    }
    EXPECT_GE(eng.repartitionCount(), 1u);
    EXPECT_EQ(eng.domainOfComponent(nullptr), -1);
}

TEST(DomainRepartition, ConvergesWithoutThrashing)
{
    // A fixed hotspot: after the engine adapts to it once, every later
    // window looks the same, so candidates stop improving and the
    // hysteresis gate must reject them instead of ping-ponging.
    DomainEngine eng(2);
    RepartRing ring(eng, 4);
    eagerRepartition(eng);

    for (int phase = 0; phase < 10; phase++) {
        for (int i = 0; i < 24; i++)
            ring[0].outbox.push_back(makeMsg<TestMsg>(i));
        ring[0].tickLater();
        ASSERT_EQ(eng.run(), RunResult::Drained) << "phase " << phase;
    }
    EXPECT_GE(eng.repartitionCount(), 1u);
    EXPECT_LE(eng.repartitionCount(), 3u)
        << "a steady workload must converge, not thrash";

    // The history carries one entry per adoption, newest last, and
    // each records an imbalance the adoption improved.
    auto events = eng.repartitionEvents();
    ASSERT_EQ(events.size(), eng.repartitionCount());
    for (const auto &ev : events) {
        EXPECT_GT(ev.migrated, 0);
        EXPECT_LT(ev.imbalanceAfter, ev.imbalanceBefore);
    }
}

TEST(DomainRepartition, NoRepartitionAfterStoppedRun)
{
    // A Stopped run abandons events in per-domain queues and leaves
    // clocks unsynchronized; migration only re-routes mailboxes, so
    // the run()-entry evaluation must skip such a boundary even when
    // the cost window screams imbalance. (Regression: adopting here
    // executed a moved component's leftover queue events in its old
    // domain while new events routed to the new one.)
    class StopHandler : public EventHandler
    {
      public:
        explicit StopHandler(Engine *e) : eng_(e) {}
        void handle(Event &) override { eng_->stop(); }
        std::string handlerName() const override { return "stop"; }

      private:
        Engine *eng_;
    };

    DomainEngine eng(2);
    RepartRing ring(eng, 4);
    eagerRepartition(eng);
    // Pin the stop away from the hot pair (external schedules would
    // otherwise land in domain 0 with it).
    StopHandler stopH(&eng);
    eng.assignHandler(&stopH, 1);
    eng.partition();
    // The equal-latency static cut co-locates R0 and R1 opposite the
    // stop's domain — the precondition for a weight-seeded candidate
    // that splits the hot pair.
    ASSERT_EQ(eng.domainOfComponent(&ring[0]),
              eng.domainOfComponent(&ring[1]));
    ASSERT_NE(eng.domainOfComponent(&ring[0]),
              eng.domainOfComponent(&ring[3]));

    // R0 floods R1 (intra-domain: sends at 1..60 ns, deliveries at
    // 501..560 ns) while the stop's domain sits idle. The stop is at
    // 1020 ns: its domain's safe window is the hot domain's horizon
    // plus the 500 ns edge lookahead, so it cannot execute until the
    // hot domain passed 520 ns — all 60 sends plus a batch of
    // deliveries are in the cost window (well past the 16-event
    // floor, max/mean ~2, weight spread over two movable components
    // so a re-cut genuinely improves).
    for (int i = 0; i < 60; i++)
        ring[0].outbox.push_back(makeMsg<TestMsg>(i));
    ring[0].tickLater();
    eng.schedule(
        std::make_unique<Event>(1020 * kNanosecond, &stopH));
    ASSERT_EQ(eng.run(), RunResult::Stopped);

    // Resuming from the stopped state must not adopt a new cut at
    // entry (adoption only ever happens at run() entry here), and the
    // resumed run must deliver everything in order.
    ASSERT_EQ(eng.run(), RunResult::Drained);
    EXPECT_EQ(eng.repartitionCount(), 0u)
        << "repartitioned across a Stopped (non-drained) boundary";
    ASSERT_EQ(ring[1].received.size(), 60u);
    for (int i = 0; i < 60; i++)
        EXPECT_EQ(ring[1].received[static_cast<std::size_t>(i)], i);
}

TEST(DomainRepartition, LateRegisteredComponentKeepsRoutingAcrossRepartition)
{
    // A component registered after the partition is fixed is pinned to
    // domain 0 by noteComponent; the adopted cut must carry that
    // mapping, not orphan it to the scheduling-worker fallback.
    DomainEngine eng(2);
    RepartRing ring(eng, 4);
    eagerRepartition(eng);
    eng.partition(); // Fix the cut: anything registered now is late.
    FwdNode late(&eng, "Late", 16);
    ASSERT_EQ(eng.domainOfComponent(&late), 0);

    for (int phase = 0; phase < 6; phase++) {
        FwdNode &hot = phase % 2 == 0 ? ring[0] : ring[2];
        for (int i = 0; i < 24; i++)
            hot.outbox.push_back(makeMsg<TestMsg>(i));
        hot.tickLater();
        ASSERT_EQ(eng.run(), RunResult::Drained) << "phase " << phase;
    }
    ASSERT_GE(eng.repartitionCount(), 1u);
    EXPECT_EQ(eng.domainOfComponent(&late), 0)
        << "late registration lost its routing entry in the rebuild";
}

TEST(DomainRepartition, DisabledEngineKeepsStaticCutAndZeroCost)
{
    DomainEngine eng(2);
    RepartRing ring(eng, 4);
    // Repartition off (the default): no cost tracking, no history.
    for (int phase = 0; phase < 4; phase++) {
        for (int i = 0; i < 24; i++)
            ring[0].outbox.push_back(makeMsg<TestMsg>(i));
        ring[0].tickLater();
        ASSERT_EQ(eng.run(), RunResult::Drained);
    }
    EXPECT_FALSE(eng.repartitionEnabled());
    EXPECT_EQ(eng.repartitionCount(), 0u);
    EXPECT_EQ(eng.migratedComponents(), 0u);
    EXPECT_TRUE(eng.repartitionEvents().empty());
    for (int i = 0; i < eng.numDomains(); i++)
        EXPECT_EQ(eng.domainStatus(i).cost, 0u);
}

TEST(DomainRepartition, OneDomainWithRepartitionMatchesSerialOrder)
{
    // With one domain the trigger can never fire and the event order
    // must stay bit-identical to the serial engine even with tracking
    // enabled — the "off/1-domain is a no-op" half of the invariant.
    SerialEngine serial;
    OrderHook serialHook;
    serial.acceptHook(&serialHook);
    auto serialHandlers = buildScenario(serial);
    EXPECT_EQ(serial.run(), RunResult::Drained);

    DomainEngine dom(1);
    eagerRepartition(dom);
    OrderHook domHook;
    dom.acceptHook(&domHook);
    auto domHandlers = buildScenario(dom);
    EXPECT_EQ(dom.run(), RunResult::Drained);

    EXPECT_EQ(dom.repartitionCount(), 0u);
    auto a = normalize(serialHook.order, serialHandlers);
    auto b = normalize(domHook.order, domHandlers);
    EXPECT_EQ(a, b) << "1-domain + repartition diverged from serial";
}

TEST(DomainRepartition, EndStateMatchesSerialOnRing)
{
    // Same phased hotspot on the serial engine and on an adaptively
    // repartitioned 2-domain engine: identical delivered data, event
    // count, and final virtual time — repartitioning may only move
    // the schedule, never the results.
    auto driveRing = [](Engine &eng, RepartRing &ring) {
        std::vector<std::vector<int>> rx;
        int seq = 0;
        for (int phase = 0; phase < 6; phase++) {
            FwdNode &hot = ring[static_cast<std::size_t>(
                (phase % 2) * 2)];
            for (int i = 0; i < 16; i++)
                hot.outbox.push_back(makeMsg<TestMsg>(seq++));
            hot.tickLater();
            EXPECT_EQ(eng.run(), RunResult::Drained);
        }
        for (auto &n : ring.nodes)
            rx.push_back(n->received);
        return rx;
    };

    SerialEngine serial;
    RepartRing sring(serial, 4);
    auto serialRx = driveRing(serial, sring);

    DomainEngine dom(2);
    RepartRing ring(dom, 4);
    eagerRepartition(dom);
    auto domRx = driveRing(dom, ring);

    EXPECT_GE(dom.repartitionCount(), 1u);
    EXPECT_EQ(domRx, serialRx);
    EXPECT_EQ(dom.now(), serial.now());
}

TEST(DomainRepartition, PlatformRunCompletesWithRepartition)
{
    // The mcm4 platform with adaptive repartitioning enabled through
    // the config surface must still complete kernels (end state equal
    // to the serial run of PlatformRunMatchesSerialCompletion).
    auto cfg = gpu::PlatformConfig::mcm4(gpu::GpuConfig::tiny());
    cfg.engineKind = gpu::EngineKind::Domain;
    cfg.domains = 4;
    cfg.repartition = true;
    cfg.repartitionThreshold = 1.1;
    cfg.repartitionCooldown = 0;
    cfg.repartitionMinEvents = 64;
    gpu::Platform plat(cfg);
    auto *de = dynamic_cast<DomainEngine *>(&plat.engine());
    ASSERT_NE(de, nullptr);
    EXPECT_TRUE(de->repartitionEnabled());

    auto k = smallKernel(16);
    plat.launchKernel(&k);
    ASSERT_EQ(plat.run(), gpu::Platform::RunStatus::Completed);
    EXPECT_GT(plat.engine().now(), 0u);
    EXPECT_GT(plat.engine().eventCount(), 0u);
}

TEST(DomainRepartition, ApplyEngineArgsParsesRepartitionFlags)
{
    gpu::PlatformConfig cfg;
    const char *argvConst[] = {"prog",
                               "--engine=domain",
                               "--domains=4",
                               "--repartition=time",
                               "--repartition-threshold=2.5",
                               "--repartition-cooldown=5",
                               "--repartition-min-events=9999"};
    gpu::applyEngineArgs(cfg, 7, const_cast<char **>(argvConst));
    EXPECT_TRUE(cfg.repartition);
    EXPECT_TRUE(cfg.repartitionTime);
    EXPECT_DOUBLE_EQ(cfg.repartitionThreshold, 2.5);
    EXPECT_EQ(cfg.repartitionCooldown, 5);
    EXPECT_EQ(cfg.repartitionMinEvents, 9999u);

    const char *argvOff[] = {"prog", "--repartition=off"};
    gpu::applyEngineArgs(cfg, 2, const_cast<char **>(argvOff));
    EXPECT_FALSE(cfg.repartition);
}

TEST(DomainRepartition, DomainsEndpointServesCostAndHistory)
{
    // /api/v1/domains now reports per-domain cost, the imbalance
    // gauge, and the repartition history — and sits behind the
    // coalesced cache (ETag + 304, x-akita-no-cache bypass).
    DomainEngine eng(2);
    RepartRing ring(eng, 4);
    eagerRepartition(eng);
    for (int phase = 0; phase < 4; phase++) {
        FwdNode &hot = phase % 2 == 0 ? ring[0] : ring[2];
        for (int i = 0; i < 24; i++)
            hot.outbox.push_back(makeMsg<TestMsg>(i));
        hot.tickLater();
        ASSERT_EQ(eng.run(), RunResult::Drained);
    }
    ASSERT_GE(eng.repartitionCount(), 1u);

    rtm::MonitorConfig mcfg;
    mcfg.announceUrl = false;
    mcfg.domainsTtlFloorMs = 60 * 1000; // One build for this test.
    rtm::Monitor mon(mcfg);
    mon.registerEngine(&eng);
    ASSERT_TRUE(mon.startServer());

    web::PersistentClient client("127.0.0.1", mon.serverPort());
    auto first = client.get("/api/v1/domains");
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->status, 200);
    ASSERT_TRUE(first->headers.count("etag"));

    json::Json doc = json::Json::parse(first->body);
    EXPECT_EQ(doc.getInt("num_domains", 0), 2);
    EXPECT_TRUE(doc.getBool("repartition_enabled", false));
    EXPECT_GE(doc.getInt("repartitions", 0), 1);
    EXPECT_GT(doc.getNumber("imbalance", 0), 0.0);
    // Cost windows reset at evaluations, so only the tail window is
    // visible — but the field must be present on every domain.
    for (const auto &dom : doc.get("domains")->items())
        EXPECT_NE(dom.get("cost"), nullptr);
    const json::Json *history = doc.get("repartition_events");
    ASSERT_NE(history, nullptr);
    ASSERT_FALSE(history->items().empty());
    const json::Json &ev = history->items().front();
    EXPECT_GE(ev.getInt("seq", 0), 1);
    EXPECT_GT(ev.getInt("migrated", 0), 0);
    EXPECT_GT(ev.getNumber("imbalance_before", 0),
              ev.getNumber("imbalance_after", 0));

    // Replaying the ETag within the TTL gets a 304.
    auto second = client.get(
        "/api/v1/domains",
        {{"If-None-Match", first->headers.at("etag")}});
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->status, 304);

    // The bypass header skips the cache and carries no validator.
    auto third =
        client.get("/api/v1/domains", {{"x-akita-no-cache", "1"}});
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->status, 200);
    EXPECT_FALSE(third->headers.count("etag"));
}
